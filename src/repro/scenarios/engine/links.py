"""Per-RA uplink shapes, resolved from the config's link-profile knobs.

A scenario can model each RA's last-mile connectivity with a
:class:`repro.net.Link`: the dissemination client adds one request/response
round trip (sized by the pull's actual bytes) to every pull's recorded
latency.  Profiles:

* ``lan`` / ``metro`` / ``wan`` — the standard shapes from
  :mod:`repro.net.link`;
* ``stalled`` — a pathologically slow uplink (25 s propagation delay at
  256 kbit/s), used by the ``slow-ra-holb`` scenario to push one RA's
  dissemination lag past the 2Δ bound without delaying anyone else;
* ``mixed`` — cycles lan → metro → wan across the fleet by agent index;
* ``""`` — no link modelling (the serial runner's behaviour).

``link_overrides`` pins individual agents to a concrete profile on top of
the fleet-wide ``link_profile``.
"""

from __future__ import annotations

from typing import Optional

from repro.net import Link, lan_link, metro_link, wan_link
from repro.scenarios.config import ScenarioConfig

#: One-way delay of the ``stalled`` profile; chosen so a single round trip
#: exceeds one Δ period in every scenario that uses it.
STALLED_LATENCY_SECONDS = 25.0


def stalled_link() -> Link:
    """The pathological uplink: 25 s one-way delay at 256 kbit/s."""
    return Link(
        latency_seconds=STALLED_LATENCY_SECONDS,
        bandwidth_bytes_per_second=32_000.0,
        name="stalled",
    )


#: The cycle order used by the ``mixed`` fleet-wide profile.
_MIXED_CYCLE = ("lan", "metro", "wan")


def resolve_profile(profile: str) -> Link:
    """The :class:`Link` for one concrete profile name."""
    if profile == "lan":
        return lan_link()
    if profile == "metro":
        return metro_link()
    if profile == "wan":
        return wan_link()
    if profile == "stalled":
        return stalled_link()
    raise ValueError(f"not a concrete link profile: {profile!r}")


def link_for_agent(
    config: ScenarioConfig, agent_name: str, agent_index: int
) -> Optional[Link]:
    """The uplink to model for one RA, or ``None`` for no link modelling.

    An entry in :attr:`~repro.scenarios.config.ScenarioConfig.link_overrides`
    wins over the fleet-wide profile; the ``mixed`` profile cycles the
    standard shapes by fleet index so expanded fleets get heterogeneous
    connectivity deterministically.
    """
    override = config.link_overrides.get(agent_name, "")
    if override:
        return resolve_profile(override)
    if not config.link_profile:
        return None
    if config.link_profile == "mixed":
        return resolve_profile(_MIXED_CYCLE[agent_index % len(_MIXED_CYCLE)])
    return resolve_profile(config.link_profile)


def profile_name_for_agent(
    config: ScenarioConfig, agent_name: str, agent_index: int
) -> str:
    """The resolved profile name for one RA (``""`` when unmodelled)."""
    link = link_for_agent(config, agent_name, agent_index)
    return link.name if link is not None else ""
