"""The fleet's actors: CA director, RA pull agents, client load.

Each actor schedules its own next event on the engine's shared
:class:`repro.net.EventScheduler` (self-chaining), so the whole run is one
event loop instead of a lockstep period loop:

* :class:`CADirector` fires at every period's bin start: it performs the
  CA's publication duty (outage queueing, backlog flush, issuance or bare
  refresh), runs the ``after_ca_duty`` observers (rotation recording, fault
  injection, snapshots), posts ``head-published`` to every RA mailbox, and
  chains the next period.
* :class:`RAActor` fires at its own pull time — ``bin + Δ + i·stagger +
  jitter_i`` — drains its mailbox (serving queued client batches first),
  handles restart/crash/restore faults, pulls over its modelled uplink, and
  chains its next pull.  When the last agent of a period finishes, the
  engine runs the ``after_pulls`` observers.
* :class:`ClientLoadActor` posts mid-period ``client-batch`` messages via
  the drift-free :meth:`~repro.net.EventScheduler.schedule_every`.

Same-time events fire in scheduling order, which (with the chaining
discipline above) reproduces the serial runner's period ordering exactly
when every concurrency knob is at its default.
"""

from __future__ import annotations

import random
import tempfile
from typing import List, Tuple

from repro.crypto.signing import PublicKey, verify_batch
from repro.errors import DesynchronizedError, DictionaryError
from repro.pki import SerialNumber
from repro.ritm import RevocationAgent, attach_agent_to_cas
from repro.ritm.replication import rank_peers
from repro.scenarios.engine.mailbox import Message
from repro.scenarios.engine.state import AgentRuntime, PendingProvability
from repro.workloads.streaming import ClientEvent, uniform_slot_counts

#: Serial space the absent-probe sampler draws from (3-byte serials).
_SERIAL_SPACE = 256**3 - 1


class CADirector:
    """The CA-side actor: one firing per Δ period at the bin start."""

    def __init__(self, engine) -> None:
        """Bind the director to its engine."""
        self.engine = engine
        self._period = 0

    def start(self) -> None:
        """Schedule the first period's publication event."""
        first_bin = self.engine.state.periods[0][1]
        self.engine.scheduler.schedule(first_bin, self._on_period, label="ca-duty")

    def _on_period(self, now: float) -> None:
        """One period's CA duty, observer hooks, and mailbox announcements."""
        engine, state = self.engine, self.engine.state
        cfg = state.config
        period = self._period
        ctx = engine.open_period(period, now)

        count, revoke_victim, reason = ctx.workload
        serials = [SerialNumber(next(state.serial_pool)) for _ in range(count)]
        if revoke_victim and state.victim is not None:
            serials.append(state.victim.serial)

        if ctx.outage is not None:
            if serials:
                state.backlog.append(
                    (now, serials, reason or "queued in outage", revoke_victim)
                )
                state.event(period, "ca-outage", f"{len(serials)} revocation(s) queued")
            elif period == ctx.outage.at_period:
                state.event(period, "ca-outage", "CA publishes nothing this window")
        else:
            self._issue_revocations(period, now, serials, reason, revoke_victim)

        for observer in engine.observers:
            observer.after_ca_duty(ctx, state)

        if ctx.outage is None:
            for runtime in state.runtimes:
                runtime.mailbox.post(
                    Message(kind="head-published", posted_at=now, payload={"period": period})
                )

        self._period += 1
        if self._period < len(state.periods):
            next_bin = state.periods[self._period][1]
            engine.scheduler.schedule(next_bin, self._on_period, label="ca-duty")

    def _issue_revocations(
        self,
        period: int,
        now: float,
        serials: List[SerialNumber],
        reason: str,
        revoke_victim: bool,
    ) -> None:
        """Flush any outage backlog, then revoke this period's serials."""
        state = self.engine.state
        if state.config.sharded:
            self._issue_sharded(period, now, serials, reason)
            return
        victim = state.victim
        for intended_time, queued, queued_reason, queued_victim in state.backlog:
            issuance = state.ca.revoke(queued, now=now, reason=queued_reason)
            state.record_issuance(issuance, intended_time)
            if queued_victim and victim is not None:
                victim.revoked_at = now
                state.event(period, "victim-revoked", f"serial {victim.serial} revoked")
            state.event(
                period,
                "backlog-flush",
                f"{len(queued)} queued revocation(s) published "
                f"{now - intended_time:.0f}s late",
            )
        state.backlog = []
        if not serials:
            state.ca.refresh(now=now)
            return
        issuance = state.ca.revoke(serials, now=now, reason=reason or "unspecified")
        state.record_issuance(issuance, now)
        if revoke_victim and victim is not None:
            victim.revoked_at = now
            state.event(period, "victim-revoked", f"serial {victim.serial} revoked")
        if len(serials) > (1 if revoke_victim else 0):
            state.event(period, "revocation", f"{len(serials)} serial(s) revoked")

    def _issue_sharded(
        self, period: int, now: float, serials: List[SerialNumber], reason: str
    ) -> None:
        """Sharded-mode issuance: assign expiries, route to shards, refresh.

        Every serial gets a deterministic certificate expiry 1..N periods
        after its revocation (``cert_lifetime_periods``), producing the
        expiry churn that makes shards fill and retire over a long run.  The
        same serials are fed to the unsharded oracle dictionary for the
        verdict/storage comparison.  The CA refreshes every period, which
        also drives shard retirement at the configured cadence.
        """
        state = self.engine.state
        if serials:
            pairs = [(serial, state.assign_expiry(serial, now)) for serial in serials]
            issuances = state.ca.revoke_with_expiry(
                pairs, now=now, reason=reason or "unspecified"
            )
            for _, issuance in issuances:
                state.batches.append(list(issuance.serials))
            state.revocations_issued += len(serials)
            state.pending.append(
                PendingProvability(
                    event_time=now, cumulative_size=state.revocations_issued
                )
            )
            state.oracle.insert(serials, int(now))
            state.event(period, "revocation", f"{len(serials)} serial(s) revoked")
        state.ca.refresh(now=now)


class RAActor:
    """One RA's actor: drains its mailbox and pulls once per period."""

    def __init__(self, engine, runtime: AgentRuntime) -> None:
        """Bind the actor to its runtime and derive its seeded RNG streams."""
        self.engine = engine
        self.runtime = runtime
        cfg = engine.state.config
        stem = f"{cfg.name}:{cfg.rng_seed}"
        self._jitter_rng = random.Random(f"{stem}:jitter:{runtime.spec_name}")
        self._client_rng = random.Random(f"{stem}:clients:{runtime.spec_name}")
        self._period = 0

    def start(self) -> None:
        """Schedule this agent's first pull."""
        self._schedule_pull(0)

    def _schedule_pull(self, period: int) -> None:
        """Queue the pull event for ``period`` at the agent's offset time."""
        state = self.engine.state
        cfg = state.config
        bin_start = state.periods[period][1]
        offset = self.runtime.fleet_index * cfg.pull_stagger_seconds
        if cfg.pull_jitter_seconds:
            offset += self._jitter_rng.uniform(0.0, cfg.pull_jitter_seconds)
        self.engine.scheduler.schedule(
            bin_start + cfg.delta_seconds + offset,
            self._on_pull,
            label=f"pull:{self.runtime.spec_name}",
        )

    def _on_pull(self, now: float) -> None:
        """One period's turn: fault handling, mailbox drain, the pull itself."""
        engine, state, runtime = self.engine, self.engine.state, self.runtime
        period = self._period
        self._period += 1
        if self._period < len(state.periods):
            self._schedule_pull(self._period)

        ctx = engine.period_contexts[period]
        fault = state.restart_fault_for(runtime, period)
        if fault is not None:
            if fault.crash and period == fault.at_period:
                self._crash(period, durable=fault.durable)
            runtime.missed_pulls += 1
            state.event(period, "ra-restart", f"{runtime.spec_name} missed its pull")
            engine.pull_finished(period)
            return
        outage = state.region_outage_fault_for(runtime, period)
        if outage is not None:
            if period == outage.at_period:
                # The region's RAs die with their region — durably: a real
                # deployment checkpoints continuously, so the restart path
                # is always warm-start-plus-catch-up, never data loss.
                self._crash(period, durable=True, mode="region")
            runtime.missed_pulls += 1
            state.event(
                period, "region-outage", f"{runtime.spec_name} down with its region"
            )
            engine.pull_finished(period)
            return

        self._drain_mailbox()

        restored_replicas = None
        peer_result = None
        peer_name = ""
        recovery_origin_bytes = 0
        if runtime.pending_restore:
            restored_replicas = runtime.client.restore(runtime.checkpoint_dir)
            runtime.pending_restore = False
            state.event(
                period,
                "ra-restore",
                f"{runtime.spec_name} warm-started from its checkpoint "
                f"({restored_replicas} replica(s))",
            )
            if runtime.crashed_mode == "region":
                peer_name, peer_result = self._anti_entropy_catch_up(period, now)
                # The CA-origin cost of the catch-up itself (restore plus
                # anti-entropy), before the period's ordinary pull — which
                # every live RA pays regardless — resumes.
                recovery_origin_bytes = (
                    state.cdn.origin_bytes_by_source.get(runtime.spec_name, 0)
                    - runtime.egress_baseline
                )
        result = runtime.client.pull(now=now, link=runtime.link)
        state.pull_intervals.append((now, now + result.latency_seconds))
        if runtime.crashed_mode is not None and runtime.recovery is None:
            runtime.recovery = {
                "mode": runtime.crashed_mode,
                "period": period,
                "bytes_downloaded": result.bytes_downloaded,
                "latency_seconds": result.latency_seconds,
                "serials_applied": result.serials_applied,
                "issuances_applied": result.issuances_applied,
                "resyncs": result.resyncs,
                "restored_replicas": restored_replicas or 0,
                "completed_at": now + result.latency_seconds,
            }
            if runtime.crashed_mode == "region":
                runtime.recovery.update(
                    {
                        "peer": peer_name,
                        "segments_from_peer": (
                            peer_result.segments_from_peer if peer_result else 0
                        ),
                        "peer_bytes": (
                            peer_result.segment_bytes_downloaded if peer_result else 0
                        ),
                        "peer_serials_applied": (
                            peer_result.serials_applied if peer_result else 0
                        ),
                        "cold_sync_fallbacks": (
                            peer_result.cold_sync_fallbacks if peer_result else 0
                        ),
                        "fallback_bytes": (
                            peer_result.bytes_downloaded
                            - peer_result.segment_bytes_downloaded
                            if peer_result
                            else 0
                        ),
                        # Origin bytes this RA's catch-up cost the CA
                        # (peer relays cost 0; a cold-sync fallback's
                        # bytes are reported separately above).
                        "ca_origin_bytes": recovery_origin_bytes,
                    }
                )
            state.event(
                period,
                "ra-recovered",
                f"{runtime.spec_name} {runtime.crashed_mode} recovery: "
                f"{result.bytes_downloaded} B, "
                f"{result.serials_applied} serial(s) applied in "
                f"{result.latency_seconds:.3f}s",
            )
        state.advance_provability(runtime, now + result.latency_seconds)
        if ctx.forgery is not None and period == ctx.forgery.at_period:
            state.forgery_errors += len(result.errors)
        for error in result.errors:
            state.event(period, "pull-error", error)
        engine.pull_finished(period)

    def _crash(self, period: int, durable: bool, mode: str = "") -> None:
        """Kill and re-create the agent's process state for a crash restart.

        In durable mode the dissemination client checkpoints first —
        modelling an RA that persists its state once per applied epoch — so
        recovery can warm-start from disk.  Either way the old agent and
        client are discarded (their pull history is archived for the run's
        dissemination totals) and replaced with a fresh attach, exactly what
        a restarted process would do.

        ``mode`` overrides the recorded crash mode: a ``region-outage``
        crash is durable mechanically but recovers via peer anti-entropy,
        and the recovery study tells the two apart by this label.
        """
        state, runtime = self.engine.state, self.runtime
        streaming = runtime.client.segment_streaming
        if durable:
            runtime.checkpoint_dir = tempfile.mkdtemp(
                prefix=f"ritm-ckpt-{runtime.spec_name}-"
            )
            state.checkpoint_dirs.append(runtime.checkpoint_dir)
            runtime.client.checkpoint(runtime.checkpoint_dir)
        runtime.archived_pulls.extend(runtime.client.pull_history)
        runtime.agent.close()
        agent = RevocationAgent(runtime.spec_name, state.ritm_config)
        runtime.agent = agent
        runtime.client = attach_agent_to_cas(
            agent, [state.ca], state.cdn, runtime.location
        )
        runtime.client.segment_streaming = streaming
        runtime.pending_restore = durable
        runtime.crashed_mode = mode or ("durable" if durable else "cold")
        runtime.egress_baseline = state.cdn.origin_bytes_by_source.get(
            runtime.spec_name, 0
        )
        state.event(
            period,
            "ra-crash",
            f"{runtime.spec_name} crashed "
            f"({'durable checkpoint on disk' if durable else 'memory lost'})",
        )

    def _anti_entropy_catch_up(self, period: int, now: float):
        """Catch a region-restored agent up from its nearest healthy peer.

        The peer ranking comes straight from the replication layer:
        regional proximity first, then link similarity, so a restored RA
        prefers a survivor one hop away over a cross-continent one.  The
        peer sync's :class:`~repro.ritm.dissemination.PullResult` lands in
        the client's own pull history; here we only pick the peer, run the
        sync, and log the outcome.
        """
        state, runtime = self.engine.state, self.runtime
        candidates = [
            other
            for other in state.runtimes
            if other is not runtime and other.crashed_mode is None
        ]
        if not candidates:
            return "", None
        ranked = rank_peers(
            runtime.location, [(other.spec_name, other.location) for other in candidates]
        )
        by_name = {other.spec_name: other for other in candidates}
        peer = by_name[ranked[0]]
        peer_result = runtime.client.sync_from_peer(peer.client, now)
        state.event(
            period,
            "anti-entropy",
            f"{runtime.spec_name} caught up from {peer.spec_name}: "
            f"{peer_result.segments_from_peer} segment(s), "
            f"{peer_result.serials_applied} serial(s), "
            f"{peer_result.cold_sync_fallbacks} cold-sync fallback(s)",
        )
        return peer.spec_name, peer_result

    # -- client handshake load -------------------------------------------------------

    def _drain_mailbox(self) -> None:
        """Process queued messages, serving client batches before the pull."""
        for message in self.runtime.mailbox.drain():
            if message.kind == "client-batch":
                if "start" in message.payload:
                    self._serve_stream(
                        int(message.payload["start"]), int(message.payload["count"])
                    )
                else:
                    self._serve_clients(int(message.payload["count"]))

    def _serve_clients(self, count: int) -> None:
        """Serve one batch of status handshakes against the pre-pull replica.

        A sampled fraction of served statuses gets its signed root
        re-verified through :func:`repro.crypto.signing.verify_batch`, which
        is where a ``parallelism="process"`` run fans the Ed25519 work out
        to worker processes.
        """
        engine, state, runtime = self.engine, self.engine.state, self.runtime
        triples: List[Tuple[PublicKey, bytes, bytes]] = []
        for _ in range(count):
            serial = self._sample_serial()
            try:
                status = runtime.agent.build_status(state.ca.name, serial)
            except (DictionaryError, DesynchronizedError):
                continue
            state.handshakes_served += 1
            engine.handshake_counter += 1
            if (
                engine.verify_every
                and engine.handshake_counter % engine.verify_every == 0
            ):
                root = status.signed_root
                triples.append((state.ca.public_key, root.payload(), root.signature))
        if triples:
            state.handshake_roots_verified += sum(verify_batch(triples))

    def _serve_stream(self, start: int, count: int) -> None:
        """Serve a contiguous slice of the streamed client-hello trace.

        The message carries only a cursor and a count; the events themselves
        are regenerated here from the run's shared
        :class:`~repro.workloads.streaming.StreamingWorkload` in
        ``O(batch_size)`` memory, so a million-client period never
        materializes its client population.  Served statuses feed the same
        counters and sampled batch-verification path as the legacy load.
        """
        engine, state, runtime = self.engine, self.engine.state, self.runtime
        triples: List[Tuple[PublicKey, bytes, bytes]] = []
        for event in state.client_stream.events(start, start + count):
            serial = self._stream_serial(event)
            try:
                status = runtime.agent.build_status(state.ca.name, serial)
            except (DictionaryError, DesynchronizedError):
                continue
            state.handshakes_served += 1
            engine.handshake_counter += 1
            if (
                engine.verify_every
                and engine.handshake_counter % engine.verify_every == 0
            ):
                root = status.signed_root
                triples.append((state.ca.public_key, root.payload(), root.signature))
        if triples:
            state.handshake_roots_verified += sum(verify_batch(triples))

    def _stream_serial(self, event: ClientEvent) -> SerialNumber:
        """Status-query serial for one streamed event.

        Every fifth event probes a serial the CA actually revoked (the
        presence path through proofs and caches); the rest query the visited
        site's own deterministic certificate serial, which is almost always
        absent — the realistic steady state — and Zipf-concentrated, so the
        hot-path caches see genuine popularity skew.
        """
        state = self.engine.state
        if state.numbered and event.index % 5 == 0:
            _, serial = state.numbered[(event.site + event.index) % len(state.numbered)]
            return serial
        return SerialNumber(state.client_stream.site_serial(event.site))

    def _sample_serial(self) -> SerialNumber:
        """Draw a status-query serial: 80 % issued, 20 % absent probes."""
        state = self.engine.state
        rng = self._client_rng
        if state.numbered and rng.random() < 0.8:
            _, serial = state.numbered[rng.randrange(len(state.numbered))]
            return serial
        issued = self.engine.issued_values()
        while True:
            value = rng.randrange(1, _SERIAL_SPACE + 1)
            if value not in issued:
                return SerialNumber(value)


class ClientLoadActor:
    """Schedules the run's client load over periods and the RA fleet.

    One drift-free recurring event per period, at the period's midpoint,
    posts a ``client-batch`` message into every RA's mailbox; the RA serves
    the batch when it next drains (normally at its pull, so clients always
    hit the pre-pull replica state — and a restarted RA visibly accumulates
    unserved batches).

    Two load shapes share this actor.  The legacy
    ``client_handshakes`` knob spreads a flat total evenly over every
    (period, agent) slot — the original bespoke ``divmod`` loop, now
    delegated to :func:`repro.workloads.streaming.uniform_slot_counts` and
    byte-identical to it.  A ``client_stream`` config instead takes its
    per-period totals from the streaming generator's diurnal schedule and
    posts *cursors into the trace* rather than bare counts, so the messages
    stay O(1) no matter how many clients the stream models.
    """

    def __init__(self, engine) -> None:
        """Precompute the per-(period, agent) schedule for the load shape."""
        self.engine = engine
        state = engine.state
        cfg = state.config
        fleet = len(state.runtimes)
        periods = len(state.periods)
        self._period = 0
        if state.client_stream is not None:
            delta = cfg.delta_seconds
            first = state.periods[0][1]
            boundaries = [first + p * delta for p in range(periods + 1)]
            counts = state.client_stream.period_counts(boundaries)
            self._plan: List[List[Tuple[int, int]]] = []
            cursor = 0
            for count in counts:
                entries = []
                for share in uniform_slot_counts(count, fleet):
                    entries.append((cursor, share))
                    cursor += share
                self._plan.append(entries)
            self._streamed = True
        else:
            counts = uniform_slot_counts(cfg.client_handshakes, periods * fleet)
            self._plan = [
                [(0, counts[period * fleet + index]) for index in range(fleet)]
                for period in range(periods)
            ]
            self._streamed = False

    def start(self) -> None:
        """Schedule one mid-period batch posting per period."""
        state = self.engine.state
        delta = state.config.delta_seconds
        self.engine.scheduler.schedule_every(
            interval=float(delta),
            callback=self._on_tick,
            start=state.periods[0][1] + delta / 2.0,
            count=len(state.periods),
            label="client-load",
        )

    def _on_tick(self, now: float) -> None:
        """Post this period's client batches to every RA mailbox."""
        state = self.engine.state
        period = self._period
        self._period += 1
        for index, runtime in enumerate(state.runtimes):
            start, count = self._plan[period][index]
            if not count:
                continue
            payload = {"period": period, "count": count}
            if self._streamed:
                payload["start"] = start
            runtime.mailbox.post(
                Message(kind="client-batch", posted_at=now, payload=payload)
            )
