"""The study phases that bracket the event loop.

Everything here runs *outside* the scheduler: victim setup happens before
the first event fires, and the closing handshake, gossip audit, engine
comparison, baseline comparison, and the crash/rotation/equivocation/
sharded extras all run after the last event drains.  Each function is a
direct port of the serial runner's corresponding phase, taking the shared
:class:`~repro.scenarios.engine.state.RunState` instead of a runner
instance, so report extras stay byte-identical.
"""

from __future__ import annotations

import time as _time
from dataclasses import replace
from typing import Dict, List, Optional

from repro.crypto import HashChain, KeyPair
from repro.crypto.merkle import SortedMerkleTree
from repro.dictionary.signed_root import SignedRoot
from repro.dictionary.sync import SyncRequest
from repro.net.clock import SimulatedClock
from repro.pki import SerialNumber, TrustStore
from repro.ritm import GossipExchange, build_close_to_client_deployment
from repro.scenarios.faults import DECOY_SERIAL
from repro.scenarios.engine.state import AgentRuntime, RunState, VictimRuntime
from repro.store import create_store
from repro.workloads.streaming import EVENT_BYTES


def setup_victim(state: RunState, now: float) -> Optional[VictimRuntime]:
    """Issue the victim certificate and run the opening handshake."""
    cfg = state.config
    ca = state.ca
    if not cfg.victim_host:
        return None
    server_keys = KeyPair.generate(f"{cfg.name}-server".encode())
    chain = ca.authority.issue_chain_for(
        cfg.victim_host, server_keys.public, now=int(now)
    )
    trust_store = TrustStore()
    trust_store.add(ca.authority)
    victim = VictimRuntime(
        chain=chain,
        trust_store=trust_store,
        # Under rotation the TLS clients must verify against the CA's
        # live keyring — the closing handshake may land epochs after the
        # genesis key was retired.
        ca_public_keys={
            ca.name: ca.keyring if cfg.key_rotation_periods else ca.public_key
        },
        serial=chain.leaf.serial,
    )
    clock = SimulatedClock(now + 1)
    deployment = build_close_to_client_deployment(
        server_chain=chain,
        trust_store=trust_store,
        ca_public_keys=victim.ca_public_keys,
        config=state.ritm_config,
        agent=state.runtimes[0].agent,
        clock=clock,
    )
    victim.initial_accepted = deployment.run_handshake()
    status = deployment.client.last_status
    victim.status_size_bytes = status.encoded_size() if status is not None else 0
    state.event(
        -1,
        "handshake",
        f"opening handshake accepted={victim.initial_accepted} "
        f"(status {victim.status_size_bytes} B)",
    )
    if cfg.long_lived_session:
        victim.deployment = deployment
        victim.clock = clock
    return victim


def final_handshake(state: RunState, now: float) -> None:
    """Run the closing handshake on a fresh connection."""
    victim = state.victim
    deployment = build_close_to_client_deployment(
        server_chain=victim.chain,
        trust_store=victim.trust_store,
        ca_public_keys=victim.ca_public_keys,
        config=state.ritm_config,
        agent=state.runtimes[0].agent,
        clock=SimulatedClock(now),
    )
    victim.final_accepted = deployment.run_handshake()
    victim.final_rejection = (
        deployment.client.rejection.value if deployment.client.rejection else ""
    )
    state.event(
        -2,
        "handshake",
        f"closing handshake accepted={victim.final_accepted}"
        + (f" ({victim.final_rejection})" if victim.final_rejection else ""),
    )


def gossip_audit(state: RunState, now: float) -> Dict[str, object]:
    """Stage a CA equivocation against the last agent and gossip it out.

    The CA revokes the victim honestly for every RA except the targeted
    one, which instead receives a forged issuance (a decoy serial and a
    parallel signed root over the doctored content).  One gossip round
    between an honest RA and the targeted RA yields portable evidence.
    """
    ca, victim, runtimes = state.ca, state.victim, state.runtimes
    issuance = ca.revoke([victim.serial], now=now, reason="equivocation target")
    victim.revoked_at = now
    honest, targeted = runtimes[0], runtimes[-1]
    for runtime in runtimes[:-1]:
        runtime.client.pull(now=now + 1)

    decoy = SerialNumber(DECOY_SERIAL)
    shadow_tree = SortedMerkleTree()
    for number, serial in state.numbered:
        shadow_tree.insert(serial.to_bytes(), number.to_bytes(4, "big"))
    shadow_tree.insert(decoy.to_bytes(), issuance.first_number.to_bytes(4, "big"))
    chain_length = issuance.signed_root.chain_length
    shadow_chain = HashChain(length=chain_length)
    forged_root = SignedRoot(
        ca_name=ca.name,
        root=shadow_tree.root(),
        size=issuance.signed_root.size,
        anchor=shadow_chain.anchor,
        timestamp=issuance.signed_root.timestamp,
        chain_length=chain_length,
    ).sign(state.authority._keys.private)  # noqa: SLF001 - the CA signs its own forgery
    forged = replace(issuance, serials=(decoy,), signed_root=forged_root)
    targeted.agent.apply_issuance(forged)
    targeted_blind = not targeted.agent.replica_for(ca.name).contains(victim.serial)

    reports = GossipExchange().exchange(
        honest.agent.consistency, targeted.agent.consistency
    )
    evidence_valid = bool(reports) and reports[0].is_valid_evidence(ca.public_key)
    state.event(
        -3,
        "gossip",
        f"gossip round produced {len(reports)} misbehavior report(s)",
    )
    return {
        "targeted_agent": targeted.spec_name,
        "honest_agent": honest.spec_name,
        "targeted_believes_victim_revoked": not targeted_blind,
        "misbehavior_reports": len(reports),
        "evidence_valid_under_ca_key": evidence_valid,
        "conflicting_size": reports[0].first.size if reports else 0,
    }


def compare_engines(state: RunState) -> Dict[str, object]:
    """Replay the recorded revocation batches against each engine."""
    comparison: Dict[str, object] = {}
    roots = set()
    for engine in state.config.compare_engines:
        with create_store(engine) as store:
            number = 0
            started = _time.perf_counter()
            for batch in state.batches:
                items = []
                for serial in batch:
                    number += 1
                    items.append((serial.to_bytes(), number.to_bytes(4, "big")))
                store.insert_batch(items)
                store.root()
            elapsed = _time.perf_counter() - started
            root_hex = store.root().hex()
        roots.add(root_hex)
        comparison[engine] = {
            "seconds": round(elapsed, 6),
            "serials": number,
            "root": root_hex[:16],
        }
    comparison["roots_agree"] = len(roots) <= 1
    return comparison


def baseline_comparison(state: RunState) -> Dict[str, object]:
    """Replay the victim's timeline against OCSP Stapling."""
    from repro.baselines import CheckContext, GroundTruth, OCSPStaplingScheme

    cfg, victim = state.config, state.victim
    truth = GroundTruth(ca_name=cfg.ca_name)
    stapling = OCSPStaplingScheme(truth, response_lifetime=4 * 86_400.0)
    session_start = float(cfg.epoch)
    stapling.check(
        CheckContext(
            "scenario-client", cfg.victim_host, victim.serial, now=session_start
        )
    )
    truth.revoke(victim.serial, now=float(victim.revoked_at))
    probe = stapling.check(
        CheckContext(
            "scenario-client",
            cfg.victim_host,
            victim.serial,
            now=float(victim.revoked_at) + 3600.0,
        )
    )
    return {
        "scheme": stapling.name,
        "response_lifetime_seconds": stapling.responder.response_lifetime,
        "reports_revoked_one_hour_after_revocation": probe.revoked,
        "worst_case_exposure_seconds": stapling.responder.response_lifetime,
        "ritm_bound_seconds": cfg.attack_window_seconds(),
    }


def crash_recovery_extras(state: RunState) -> Dict[str, object]:
    """The warm-vs-cold restart study results (docs/STORAGE.md).

    Per crashed agent: its recovery-pull metrics.  Differentially: every
    revoked serial's verdict from each crashed agent's recovered replica
    against the in-memory oracle, plus a handful of absent probes.  When
    both a durable and a cold crash ran, the head-to-head comparison.
    """
    ca = state.ca
    agents: Dict[str, object] = {}
    mismatches = checked = 0
    probe_values = [serial.value for _, serial in state.numbered]
    absent_base = (max(probe_values, default=0) or DECOY_SERIAL) + 1
    for runtime in state.runtimes:
        if runtime.crashed_mode is None:
            continue
        agents[runtime.spec_name] = dict(
            runtime.recovery or {"mode": runtime.crashed_mode}
        )
        replica = runtime.agent.replica_for(ca.name)
        if replica is None or replica.signed_root is None:
            mismatches += 1
            continue
        for value in probe_values:
            serial = SerialNumber(value)
            checked += 1
            if replica.prove(serial).is_revoked != state.oracle.contains(serial):
                mismatches += 1
        for offset in range(5):
            probe = SerialNumber(absent_base + offset)
            checked += 1
            if replica.prove(probe).is_revoked or state.oracle.contains(probe):
                mismatches += 1
    study: Dict[str, object] = {
        "agents": agents,
        "verdicts_checked": checked,
        "verdict_mismatches": mismatches,
    }
    durable = [a for a in agents.values() if a.get("mode") == "durable"]
    cold = [a for a in agents.values() if a.get("mode") == "cold"]
    if durable and cold and durable[0].get("completed_at") and cold[0].get("completed_at"):
        warm, coldstart = durable[0], cold[0]
        study["comparison"] = {
            "warm_bytes": warm["bytes_downloaded"],
            "cold_bytes": coldstart["bytes_downloaded"],
            "warm_recovery_seconds": warm["latency_seconds"],
            "cold_recovery_seconds": coldstart["latency_seconds"],
            "warm_back_in_bound_at": warm["completed_at"],
            "cold_back_in_bound_at": coldstart["completed_at"],
            "bytes_saved": coldstart["bytes_downloaded"] - warm["bytes_downloaded"],
        }
    return study


def region_outage_extras(state: RunState) -> Dict[str, object]:
    """The region-outage replication study results (docs/REPLICATION.md).

    Per restored agent: its anti-entropy recovery record (peer, segments
    relayed, bytes, CA-origin delta).  Fleet-wide: the survivors' worst
    dissemination lag through the outage, the CA-origin cost of the whole
    recovery versus what the same fleet would have paid in cold syncs, and
    the crash-recovery-style differential verdict sweep of every restored
    replica against the in-memory oracle.
    """
    ca = state.ca
    fault = next(f for f in state.config.faults if f.kind == "region-outage")
    region = fault.geo_region()
    restored: Dict[str, object] = {}
    survivors: Dict[str, object] = {}
    mismatches = checked = 0
    probe_values = [serial.value for _, serial in state.numbered]
    absent_base = (max(probe_values, default=0) or DECOY_SERIAL) + 1
    for runtime in state.runtimes:
        if runtime.crashed_mode != "region":
            survivors[runtime.spec_name] = {
                "region": runtime.location.region.value,
                "max_lag_seconds": runtime.max_lag_seconds,
                "missed_pulls": runtime.missed_pulls,
            }
            continue
        restored[runtime.spec_name] = dict(
            runtime.recovery or {"mode": "region"}
        )
        replica = runtime.agent.replica_for(ca.name)
        if replica is None or replica.signed_root is None:
            mismatches += 1
            continue
        for value in probe_values:
            serial = SerialNumber(value)
            checked += 1
            if replica.prove(serial).is_revoked != state.oracle.contains(serial):
                mismatches += 1
        for offset in range(5):
            probe = SerialNumber(absent_base + offset)
            checked += 1
            if replica.prove(probe).is_revoked or state.oracle.contains(probe):
                mismatches += 1

    # What the restored fleet's recovery actually cost the CA origin,
    # versus the counterfactual where each restored RA cold-synced the
    # full history straight from the CA.
    request = SyncRequest(ca_name=ca.name, have_count=0)
    cold_sync_bytes = request.encoded_size() + ca.sync_server.serve(
        request
    ).encoded_size()
    recovery_origin_bytes = sum(
        int(record.get("ca_origin_bytes", 0))
        + int(record.get("fallback_bytes", 0))
        for record in restored.values()
    )
    return {
        "failed_region": region.value,
        "outage_periods": fault.duration_periods,
        "restored_agents": restored,
        "survivors": survivors,
        "verdicts_checked": checked,
        "verdict_mismatches": mismatches,
        "segments_published": ca.replication.segments_published,
        "segment_bytes_published": ca.replication.bytes_published,
        "cold_sync_bytes_each": cold_sync_bytes,
        "cold_sync_bytes_fleet": cold_sync_bytes * len(restored),
        "recovery_origin_bytes": recovery_origin_bytes,
    }


def key_rotation_extras(state: RunState) -> Dict[str, object]:
    """The key-rotation study results (docs/THREATS.md).

    The rotation timeline, how many announcement-chain entries the fleet
    learned, each agent's final keyring epoch, and the overlap probes from
    :class:`~repro.scenarios.engine.observers.RotationProber`.
    """
    ca = state.ca
    learned = sum(
        sum(pull.key_rotations_applied for pull in r.pull_results())
        for r in state.runtimes
    )
    agent_epochs: Dict[str, int] = {}
    for runtime in state.runtimes:
        keyring = runtime.agent.keyring_for(ca.name)
        agent_epochs[runtime.spec_name] = keyring.key_epoch if keyring else 0
    return {
        "ca_key_epoch": ca.key_epoch,
        "rotations": [
            {
                "period": record["period"],
                "epoch": record["epoch"],
                "rotated_at": record["rotated_at"],
                "overlap_until": record["overlap_until"],
            }
            for record in state.rotations
        ],
        "announcements_learned": learned,
        "agent_key_epochs": agent_epochs,
        "probes": list(state.rotation_probes),
    }


def equivocation_extras(state: RunState) -> Dict[str, object]:
    """The equivocation study results: planted forgery, detection, evidence."""
    ca = state.ca
    planted = dict(state.equivocation or {})
    target_name = planted.get("targeted_agent")
    target = next(
        (r for r in state.runtimes if r.spec_name == target_name), None
    )
    targeted_blind = False
    if target is not None and state.hidden_serial is not None:
        replica = target.agent.replica_for(ca.name)
        targeted_blind = replica is not None and not replica.contains(
            state.hidden_serial
        )
    reports = state.misbehavior_reports
    return {
        **planted,
        "detected_period": state.first_detection_period,
        "misbehavior_reports": len(reports),
        "evidence_valid_under_ca_keyring": bool(reports)
        and all(report.is_valid_evidence(ca.keyring) for report in reports),
        "reporter_signatures_valid": bool(reports)
        and all(report.verify_reporter() for report in reports),
        "targeted_blind": targeted_blind,
    }


def sharded_extras(state: RunState, end_time: float) -> Dict[str, object]:
    """The §VIII study results: storage timeline, differential verdicts,
    read-path purity, and reclaimed storage."""
    cfg, ca = state.config, state.ca
    agent = state.runtimes[0].agent
    oracle = state.oracle

    # Differential verdicts: every revoked serial whose certificate is
    # still live must get the same verdict from the sharded replica as
    # from the unsharded oracle; a few absent serials in live windows
    # must prove absent on both.
    live_checked = mismatches = absent_checked = 0
    live_expiries: List[int] = []
    for value, expiry in state.expiries.items():
        if expiry <= end_time:
            continue
        live_expiries.append(expiry)
        serial = SerialNumber(value)
        replica = agent.replica_for_certificate(ca.name, expiry)
        if replica is None:
            mismatches += 1
            continue
        live_checked += 1
        if replica.prove(serial).is_revoked != oracle.contains(serial):
            mismatches += 1
    unused_value = max(state.expiries, default=0) + 1
    for expiry in live_expiries[:5]:
        probe = SerialNumber(unused_value)
        unused_value += 1
        replica = agent.replica_for_certificate(ca.name, expiry)
        if replica is None:
            mismatches += 1
            continue
        absent_checked += 1
        if replica.prove(probe).is_revoked or oracle.contains(probe):
            mismatches += 1

    # Read-path purity: proving a serial in a window no shard covers
    # must answer "absent" without creating (and retaining) a shard.
    shards_before = ca.shards.shard_count
    storage_before = ca.storage_size_bytes()
    unknown_window_expiry = int(
        end_time + 2 * cfg.shard_width_periods * cfg.delta_seconds
    )
    probe_status = ca.prove_status(
        SerialNumber(unused_value), unknown_window_expiry, now=int(end_time)
    )
    read_path_pure = (
        ca.shards.shard_count == shards_before
        and ca.storage_size_bytes() == storage_before
        and not probe_status.is_revoked
    )

    baseline_series = [
        sample["baseline_storage_bytes"] for sample in state.storage_timeline
    ]
    sharded_series = [
        sample["ra_storage_bytes"] for sample in state.storage_timeline
    ]
    return {
        "timeline": state.storage_timeline,
        "live_serials_checked": live_checked,
        "absent_serials_checked": absent_checked,
        "verdict_mismatches": mismatches,
        "read_path_pure": read_path_pure,
        "ca_shards_retired": ca.shards.retired_count,
        "ca_reclaimed_bytes": ca.shards.reclaimed_storage_bytes,
        "ra_reclaimed_bytes": agent.reclaimed_storage_bytes,
        "ra_pruned_entries": agent.pruned_revocations,
        "baseline_final_bytes": baseline_series[-1] if baseline_series else 0,
        "sharded_final_bytes": sharded_series[-1] if sharded_series else 0,
        "sharded_peak_bytes": max(sharded_series, default=0),
        "baseline_monotonic": all(
            earlier <= later
            for earlier, later in zip(baseline_series, baseline_series[1:])
        ),
    }


def shard_replicas_converged(state: RunState, runtime: AgentRuntime) -> bool:
    """Does the agent hold an equal-size replica of every live CA shard?

    Shards whose window expired by the agent's last pull are skipped:
    the RA prunes at pull time (bin start + Δ) while the CA retires at
    its next refresh (the following bin start), so a window boundary
    inside the final period legitimately leaves the CA one shard ahead.
    """
    ca = state.ca
    replicas = runtime.agent.shard_replicas(ca.name)
    history = runtime.client.pull_history
    last_pull = history[-1].time if history else 0.0
    for key in ca.shards.shard_keys():
        if key.is_expired(last_pull):
            continue
        replica = replicas.get(key.index)
        shard = ca.shards.shard_at(key.index)
        if replica is None or shard is None or replica.size != shard.size:
            return False
    return True

def soak_extras(state: RunState) -> Dict[str, object]:
    """The soak-run study results (docs/WORKLOADS.md).

    Three pinned verdict groups feed :func:`..checks.build_checks`:

    * **differential correctness** — every revoked serial's verdict from
      every RA's replica against the in-memory oracle, plus absent probes
      (the ``soak-verdicts-match-oracle`` check);
    * **memory accounting** — the stream generator's own deterministic byte
      accounting against its ``O(sites + batch_size)`` budget (the
      ``memory-bounded`` check; process RSS stays informational in the
      timeline because it is not deterministic);
    * **subsystem coverage** — proof the run actually exercised the durable
      WAL engine, segment streaming, both hot-path caches, the batch
      verifier, and the full configured client load (the
      ``all-subsystems-exercised`` check).
    """
    cfg = state.config
    ca = state.ca
    spec = cfg.client_stream
    stream = state.client_stream

    mismatches = checked = 0
    probe_values = [serial.value for _, serial in state.numbered]
    absent_base = (max(probe_values, default=0) or DECOY_SERIAL) + 1
    for runtime in state.runtimes:
        replica = runtime.agent.replica_for(ca.name)
        if replica is None or replica.signed_root is None:
            mismatches += 1
            continue
        for value in probe_values:
            serial = SerialNumber(value)
            checked += 1
            if replica.prove(serial).is_revoked != state.oracle.contains(serial):
                mismatches += 1
        for offset in range(5):
            probe = SerialNumber(absent_base + offset)
            checked += 1
            if replica.prove(probe).is_revoked or state.oracle.contains(probe):
                mismatches += 1

    batch_budget = EVENT_BYTES * spec.batch_size
    footprint_budget = 160 * spec.sites + (1 << 20)
    peak_batch = stream.peak_batch_bytes
    footprint = stream.footprint_bytes()
    memory = {
        "clients": spec.clients,
        "batch_size": spec.batch_size,
        "peak_batch_bytes": peak_batch,
        "batch_budget_bytes": batch_budget,
        "footprint_bytes": footprint,
        "footprint_budget_bytes": footprint_budget,
        "bounded": peak_batch <= batch_budget and footprint <= footprint_budget,
    }

    proof_hits = root_lookups = 0
    segments_applied = segment_bytes = resyncs = 0
    for runtime in state.runtimes:
        proof_hits += runtime.agent.proof_cache.stats.hits
        root_stats = runtime.agent.root_cache.stats
        root_lookups += root_stats.hits + root_stats.misses
        for pull in runtime.pull_results():
            segments_applied += pull.segments_applied
            segment_bytes += pull.segment_bytes_downloaded
            resyncs += pull.resyncs
    subsystems = {
        "store_engine": cfg.store_engine,
        "durable_wal": cfg.store_engine in ("durable", "durable-compact"),
        "segment_streaming": cfg.segment_streaming,
        "segments_published": ca.replication.segments_published,
        "segments_applied": segments_applied,
        "segment_bytes_downloaded": segment_bytes,
        "proof_cache_hits": proof_hits,
        "root_cache_lookups": root_lookups,
        "resyncs": resyncs,
        "handshakes_served": state.handshakes_served,
        "handshake_roots_verified": state.handshake_roots_verified,
        "revocations_issued": state.revocations_issued,
    }

    sample = state.soak_timeline[-1] if state.soak_timeline else {}
    wall = float(sample.get("wall_seconds", 0.0)) or None
    throughput = {
        "handshakes_served": state.handshakes_served,
        "wall_seconds": wall,
        "events_per_second": (
            round(state.handshakes_served / wall, 1) if wall else None
        ),
    }

    return {
        "clients": spec.clients,
        "sites": spec.sites,
        "events_total": spec.events_total,
        "verdicts_checked": checked,
        "verdict_mismatches": mismatches,
        "memory": memory,
        "subsystems": subsystems,
        "throughput": throughput,
        "timeline": state.soak_timeline,
    }
