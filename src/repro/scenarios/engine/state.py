"""The mutable state one scenario run threads through its actors.

:class:`RunState` is the former ``ScenarioRunner`` instance state made
explicit: the deployment handles (CA, CDN, fleet runtimes, victim), the
run's timeline, and every accumulator the period loop used to update
inline — issuance batches, provability queue, fault bookkeeping, gossip
detections, fleet/contention accounting.  Actors and observers receive the
one shared instance instead of reaching into a runner object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cdn import CDNNetwork, GeoLocation
from repro.dictionary.authdict import CADictionary
from repro.net import Link
from repro.net.clock import SimulatedClock
from repro.pki import CertificationAuthority, SerialNumber, TrustStore
from repro.ritm import RITMCertificationAuthority, RITMConfig, RevocationAgent
from repro.ritm.dissemination import PullResult, RADisseminationClient
from repro.scenarios.config import FaultSpec, ScenarioConfig
from repro.scenarios.engine.mailbox import Mailbox


@dataclass
class PendingProvability:
    """A revocation waiting to become provable at each agent."""

    event_time: float
    cumulative_size: int


@dataclass
class AgentRuntime:
    """Per-agent state the engine tracks across periods."""

    spec_name: str
    agent: RevocationAgent
    client: RADisseminationClient
    location: GeoLocation
    #: The agent's position in the fleet (drives stagger offsets and the
    #: ``mixed`` link profile's cycle).
    fleet_index: int = 0
    #: The modelled uplink, or ``None`` for the serial runner's behaviour.
    link: Optional[Link] = None
    #: This agent's message queue (head announcements, client batches).
    mailbox: Mailbox = field(default_factory=lambda: Mailbox(""))
    #: Index into the pending-provability list: entries before it are provable.
    provability_cursor: int = 0
    max_lag_seconds: float = 0.0
    missed_pulls: int = 0
    #: Pull results of clients discarded by a crash restart, so dissemination
    #: totals cover the whole run, not just the current process incarnation.
    archived_pulls: List[PullResult] = field(default_factory=list)
    #: Crash-restart state: checkpoint directory (durable mode), whether a
    #: restore must run before the next pull, which crash mode hit this
    #: agent, and the metrics of its first post-crash recovery pull.
    checkpoint_dir: Optional[str] = None
    pending_restore: bool = False
    crashed_mode: Optional[str] = None
    recovery: Optional[Dict[str, object]] = None
    #: Per-source CA-origin egress attributed to this agent at crash time,
    #: so recovery cost can be measured as a delta (region-outage study).
    egress_baseline: int = 0

    def pull_results(self) -> List[PullResult]:
        """Every pull this agent completed, across crash restarts."""
        return self.archived_pulls + self.client.pull_history

    def total_bytes_downloaded(self) -> int:
        """Bytes fetched from the CDN across the agent's whole lifetime."""
        return sum(pull.bytes_downloaded for pull in self.pull_results())


@dataclass
class VictimRuntime:
    """State for the scenario's victim certificate and its connections."""

    chain: object
    trust_store: TrustStore
    ca_public_keys: Dict[str, object]
    serial: SerialNumber
    initial_accepted: bool = False
    final_accepted: bool = False
    final_rejection: str = ""
    status_size_bytes: int = 0
    revoked_at: Optional[float] = None
    detected_at: Optional[float] = None
    deployment: Optional[object] = None
    clock: Optional[SimulatedClock] = None

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready summary for the report's extras."""
        return {
            "serial": str(self.serial),
            "initial_handshake_accepted": self.initial_accepted,
            "final_handshake_accepted": self.final_accepted,
            "final_rejection": self.final_rejection,
            "status_size_bytes": self.status_size_bytes,
            "revoked_at": self.revoked_at,
            "detected_at": self.detected_at,
            "detection_lag_seconds": (
                self.detected_at - self.revoked_at
                if self.detected_at is not None and self.revoked_at is not None
                else None
            ),
        }


@dataclass
class RunState:
    """Everything one run's actors and observers share.

    Construction happens in :class:`~repro.scenarios.engine.core.FleetEngine`;
    afterwards the instance is append/update-only until the report is
    assembled from it.
    """

    config: ScenarioConfig
    ritm_config: RITMConfig
    authority: CertificationAuthority
    ca: RITMCertificationAuthority
    cdn: CDNNetwork
    #: ``(period index, bin start time)`` pairs.
    periods: List[Tuple[int, float]]
    #: Per-period ``(serial count, revoke-victim flag, reason)`` work items.
    counts: List[Tuple[int, bool, str]]
    runtimes: List[AgentRuntime] = field(default_factory=list)
    victim: Optional[VictimRuntime] = None
    serial_pool: Optional[object] = None

    # -- the period loop's accumulators (formerly ScenarioRunner._*) --------------
    events: List[Dict[str, object]] = field(default_factory=list)
    pending: List[PendingProvability] = field(default_factory=list)
    batches: List[List[SerialNumber]] = field(default_factory=list)
    numbered: List[Tuple[int, SerialNumber]] = field(default_factory=list)
    backlog: List[Tuple[float, List[SerialNumber], str, bool]] = field(
        default_factory=list
    )
    revocations_issued: int = 0
    checkpoint_dirs: List[str] = field(default_factory=list)
    #: Sharded mode: serial value → assigned certificate expiry, the
    #: unsharded oracle dictionary, and the per-period storage timeline.
    expiries: Dict[int, int] = field(default_factory=dict)
    expiry_cycle: int = 0
    oracle: Optional[CADictionary] = None
    storage_timeline: List[Dict[str, object]] = field(default_factory=list)
    #: Adversarial control-plane state: every head publication's raw bytes
    #: (ammunition for the replay injector), the CA's rotation history with
    #: the retired epochs' signed roots, the rotation cache probes,
    #: replay-fault replica-integrity counters, the planted equivocation
    #: summary, and the gossip ring's detections.
    head_archive: List[bytes] = field(default_factory=list)
    rotations: List[Dict[str, object]] = field(default_factory=list)
    rotation_probes: List[Dict[str, object]] = field(default_factory=list)
    replay_probes: int = 0
    replay_mutations: int = 0
    forgery_attempts: int = 0
    forgery_errors: int = 0
    equivocation: Optional[Dict[str, object]] = None
    hidden_serial: Optional[SerialNumber] = None
    misbehavior_reports: List[object] = field(default_factory=list)
    first_detection_period: Optional[int] = None

    # -- fleet/contention accounting -----------------------------------------------
    #: ``(start, end)`` of every completed pull, for overlap metrics.
    pull_intervals: List[Tuple[float, float]] = field(default_factory=list)
    handshakes_served: int = 0
    handshake_roots_verified: int = 0
    scheduler_events_processed: int = 0
    #: The streamed client-load generator
    #: (:class:`repro.workloads.streaming.StreamingWorkload`) when the config
    #: declares a ``client_stream``; actors regenerate events from it in
    #: ``O(batch_size)`` memory.
    client_stream: Optional[object] = None
    #: Per-period soak timeline samples (throughput, storage, memory) the
    #: ``SoakRecorder`` observer appends for client-stream runs.
    soak_timeline: List[Dict[str, object]] = field(default_factory=list)

    # -- helpers shared by actors and observers --------------------------------------

    def event(self, period: int, kind: str, detail: str) -> None:
        """Append one timeline entry (period -1/-2/-3 = setup/closing/audit)."""
        self.events.append({"period": period, "kind": kind, "detail": detail})

    def active_fault(self, kind: str, period: int) -> Optional[FaultSpec]:
        """The configured fault of ``kind`` covering ``period``, if any."""
        for fault in self.config.faults:
            if fault.kind == kind and fault.covers(period):
                return fault
        return None

    def restart_fault_for(
        self, runtime: AgentRuntime, period: int
    ) -> Optional[FaultSpec]:
        """The ``ra-restart`` fault keeping ``runtime`` down this period.

        Unlike :meth:`active_fault` this considers *every* restart fault,
        so several agents can restart in the same window (the crash-recovery
        scenario runs a durable and a cold restart side by side).
        """
        for fault in self.config.faults:
            if fault.kind != "ra-restart" or not fault.covers(period):
                continue
            target = fault.agent or self.runtimes[-1].spec_name
            if runtime.spec_name == target:
                return fault
        return None

    def region_outage_fault_for(
        self, runtime: AgentRuntime, period: int
    ) -> Optional[FaultSpec]:
        """The ``region-outage`` fault keeping ``runtime`` down this period.

        An agent is down when its own region is the failed one; RAs in
        other regions ride out the outage (their CDN resolution never even
        changes) and serve as anti-entropy peers afterwards.
        """
        for fault in self.config.faults:
            if fault.kind != "region-outage" or not fault.covers(period):
                continue
            if runtime.location.region == fault.geo_region():
                return fault
        return None

    def record_issuance(self, issuance, event_time: float) -> None:
        """Track an issuance for provability accounting and replay phases."""
        self.batches.append(list(issuance.serials))
        self.numbered.extend(issuance.numbered_serials())
        self.revocations_issued += len(issuance.serials)
        if self.oracle is not None and not self.config.sharded:
            # Crash-recovery study: mirror every revocation into the
            # in-memory oracle the recovered replicas are checked against.
            self.oracle.insert(list(issuance.serials), int(event_time))
        self.pending.append(
            PendingProvability(
                event_time=event_time,
                cumulative_size=issuance.first_number + len(issuance.serials) - 1,
            )
        )

    def assign_expiry(self, serial: SerialNumber, now: float) -> int:
        """Deterministic expiry churn: 1..cert_lifetime_periods periods out."""
        lifetime = self.config.cert_lifetime_periods
        offset = (self.expiry_cycle % lifetime) + 1
        self.expiry_cycle += 1
        expiry = int(now + offset * self.config.delta_seconds)
        self.expiries[serial.value] = expiry
        return expiry

    def advance_provability(self, runtime: AgentRuntime, available_at: float) -> None:
        """Record dissemination lag for every batch the agent now covers.

        In sharded mode shard pruning shrinks replica sizes, so coverage is
        tracked by cumulative serials *applied* (which only grows) instead
        of the replica's current size.
        """
        if self.config.sharded:
            size = sum(pull.serials_applied for pull in runtime.client.pull_history)
        else:
            replica = runtime.agent.replica_for(self.ca.name)
            size = replica.size if replica is not None else 0
        while runtime.provability_cursor < len(self.pending):
            entry = self.pending[runtime.provability_cursor]
            if entry.cumulative_size > size:
                break
            lag = available_at - entry.event_time
            runtime.max_lag_seconds = max(runtime.max_lag_seconds, lag)
            runtime.provability_cursor += 1
