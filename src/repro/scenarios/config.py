"""Declarative scenario configuration.

A :class:`ScenarioConfig` is the complete, validated description of one
operational scenario: which workload drives the CA, how the deployment is
shaped (Δ, store engine, RA fleet), which faults are injected when, and which
optional study phases (victim handshakes, long-lived session, gossip audit,
engine comparison, baseline comparison) the runner should execute.

Configs are frozen dataclasses so a registered scenario can never be mutated
by a run; parameter sweeps go through :meth:`ScenarioConfig.with_overrides`
(and its ``--smoke`` specialisation :meth:`ScenarioConfig.smoke`), which
re-validates the copy.
"""

from __future__ import annotations

import dataclasses
import datetime as _dt
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Tuple

from repro.cdn.geography import Region
from repro.errors import ConfigurationError
from repro.store import DEFAULT_ENGINE, ENGINES

#: Fault kinds the runner knows how to inject (see :mod:`repro.scenarios.faults`).
FAULT_KINDS = (
    "tampered-batch",
    "ca-outage",
    "ra-restart",
    "replayed-head",
    "retired-key-forgery",
    "equivocating-ca",
    "region-outage",
)

#: Optional baseline schemes a scenario can compare itself against.
BASELINES = ("", "ocsp-stapling")

#: Workload shapes: a calibrated trace window or an explicit event script.
WORKLOAD_KINDS = ("trace", "scripted")

#: Executor backends for the fleet engine's embarrassingly parallel work
#: (Ed25519 batch verification, durable-WAL I/O).  ``serial`` — the default —
#: keeps every existing scenario's verdicts and report JSON bit-identical.
PARALLELISM_MODES = ("serial", "thread", "process")

#: Named per-RA link profiles resolvable to :class:`repro.net.Link` shapes.
#: ``""`` disables link modelling (pull latency stays purely computational),
#: ``mixed`` cycles lan/metro/wan across the fleet by agent index, and
#: ``stalled`` models a pathologically slow RA uplink.
LINK_PROFILES = ("", "lan", "metro", "wan", "stalled", "mixed")

#: Profiles a ``link_overrides`` entry may name (a concrete shape, not a
#: fleet-wide policy like ``mixed`` or the empty default).
CONCRETE_LINK_PROFILES = ("lan", "metro", "wan", "stalled")


def _region_for(name: str) -> Region:
    """Resolve a region given either the enum name or its human value."""
    for region in Region:
        if name in (region.name, region.value):
            return region
    raise ConfigurationError(
        f"unknown region {name!r}; expected one of {[r.name for r in Region]}"
    )


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault: what goes wrong, when, and for how long.

    Kinds:

    * ``tampered-batch`` — the issuance batch published in period
      ``at_period`` is replaced on the CDN with a forged copy (a decoy serial
      substituted), exercising the RA's verify → rollback → resync path;
    * ``ca-outage`` — the CA publishes nothing for ``duration_periods``
      periods; revocations issued meanwhile queue up and flush on recovery;
    * ``ra-restart`` — the targeted RA misses its pulls for
      ``duration_periods`` periods, then catches up.  By default the restart
      is *soft* (the process keeps its memory).  With ``crash=True`` the
      process dies: its in-memory replicas are lost and it resumes with a
      cold full resync from the CA — unless ``durable=True``, in which case
      it warm-starts from its last on-disk checkpoint and fetches only the
      delta since its last applied epoch (docs/STORAGE.md);
    * ``replayed-head`` — a compromised CDN re-presents the *oldest* head
      object of the run in place of the current one for ``duration_periods``
      periods; RAs must reject it via the replay window with zero replica
      mutation (docs/THREATS.md);
    * ``retired-key-forgery`` — an attacker holding a rotated-out CA signing
      key republishes the current head re-signed under that retired key after
      its overlap window has expired; RAs must refuse the signature
      (requires :attr:`ScenarioConfig.key_rotation_periods`);
    * ``region-outage`` — at ``at_period`` the CDN presence of ``region``
      fails *and* every RA in that region crashes (durably — each keeps its
      last checkpoint).  For ``duration_periods`` periods surviving RAs
      absorb the region's client traffic (their DNS resolution fails over
      to the nearest healthy region).  On recovery the crashed RAs
      warm-start from their checkpoints and catch up peer-to-peer via
      RA→RA anti-entropy (docs/REPLICATION.md) instead of cold-syncing
      from the CA;
    * ``equivocating-ca`` — the CA plants a fully self-consistent forged
      universe (shadow dictionary, parallel signed root of the same size, its
      own freshness chain) at the CDN edges of one region, targeting the RA
      named by ``agent`` (default: the last agent).  The Δ gossip ring must
      produce signed misbehavior evidence within one round.
    """

    kind: str
    at_period: int
    duration_periods: int = 1
    #: RA name targeted by ``ra-restart``/``equivocating-ca``; empty selects
    #: the last agent.
    agent: str = ""
    #: ``ra-restart`` only: the restart loses the process's memory.
    crash: bool = False
    #: ``ra-restart`` + ``crash`` only: recover from an RA checkpoint
    #: instead of a cold resync.
    durable: bool = False
    #: ``region-outage`` only: the CDN/RA region that fails (enum name or
    #: human value).
    region: str = ""

    def __post_init__(self) -> None:
        """Validate the fault kind, timing fields, and restart mode."""
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.at_period < 0:
            raise ConfigurationError("fault at_period cannot be negative")
        if self.duration_periods < 1:
            raise ConfigurationError("fault duration_periods must be at least 1")
        if (self.crash or self.durable) and self.kind != "ra-restart":
            raise ConfigurationError(
                f"crash/durable restarts only apply to ra-restart faults, "
                f"not {self.kind!r}"
            )
        if self.durable and not self.crash:
            raise ConfigurationError(
                "durable=True models recovery from a crash; set crash=True too"
            )
        if self.kind == "region-outage":
            if not self.region:
                raise ConfigurationError("a region-outage fault must name its region")
            _region_for(self.region)  # resolve eagerly, like AgentSpec
            if self.agent:
                raise ConfigurationError(
                    "region-outage targets a whole region, not a named agent"
                )
        elif self.region:
            raise ConfigurationError(
                f"only region-outage faults take a region, not {self.kind!r}"
            )

    def geo_region(self) -> Region:
        """The resolved failed :class:`~repro.cdn.geography.Region`
        (``region-outage`` faults only)."""
        return _region_for(self.region)

    def covers(self, period: int) -> bool:
        """Whether the fault is active during ``period``."""
        return self.at_period <= period < self.at_period + self.duration_periods


@dataclass(frozen=True)
class RevocationEvent:
    """One scripted workload event: revoke ``count`` serials in a period.

    When ``revoke_victim`` is set the scenario's victim certificate (issued
    for :attr:`ScenarioConfig.victim_host`) is revoked in the same batch.
    """

    at_period: int
    count: int = 0
    revoke_victim: bool = False
    reason: str = "unspecified"

    def __post_init__(self) -> None:
        """Validate event timing and that the event actually does something."""
        if self.at_period < 0:
            raise ConfigurationError("event at_period cannot be negative")
        if self.count < 0:
            raise ConfigurationError("event count cannot be negative")
        if self.count == 0 and not self.revoke_victim:
            raise ConfigurationError("an event must revoke serials or the victim")


@dataclass(frozen=True)
class WorkloadSpec:
    """What the CA revokes over the scenario's timeline.

    Two kinds exist: ``trace`` replays a window of the calibrated synthetic
    revocation trace (:mod:`repro.workloads.revocation_trace`), scaled by
    ``ca_share``; ``scripted`` executes an explicit list of
    :class:`RevocationEvent` entries.
    """

    kind: str = "scripted"
    events: Tuple[RevocationEvent, ...] = ()
    #: ISO dates bounding the trace window (``trace`` kind only).
    trace_start: str = ""
    trace_end: str = ""
    #: Fraction of the global trace handled by the CA under study.
    ca_share: float = 1.0
    #: Seed for the deterministic serial-number pool.
    serial_seed: int = 404

    def __post_init__(self) -> None:
        """Validate the workload shape for its kind."""
        if self.kind not in WORKLOAD_KINDS:
            raise ConfigurationError(
                f"unknown workload kind {self.kind!r}; expected one of {WORKLOAD_KINDS}"
            )
        if not 0.0 < self.ca_share <= 1.0:
            raise ConfigurationError("ca_share must be in (0, 1]")
        if self.kind == "trace":
            if self.events:
                raise ConfigurationError("trace workloads cannot carry scripted events")
            start, end = self.trace_window()
            if start > end:
                raise ConfigurationError("trace_start must not be after trace_end")
        elif self.trace_start or self.trace_end:
            raise ConfigurationError("scripted workloads cannot set a trace window")

    def trace_window(self) -> Tuple[_dt.date, _dt.date]:
        """The (start, end) dates of a ``trace`` workload, parsed and checked."""
        if self.kind != "trace":
            raise ConfigurationError("only trace workloads have a trace window")
        try:
            start = _dt.date.fromisoformat(self.trace_start)
            end = _dt.date.fromisoformat(self.trace_end)
        except ValueError as exc:
            raise ConfigurationError(f"bad trace window date: {exc}") from None
        return start, end

    def max_event_period(self) -> int:
        """The latest period any scripted event fires in (-1 when none)."""
        return max((event.at_period for event in self.events), default=-1)


@dataclass(frozen=True)
class ClientStreamSpec:
    """Streamed client-hello load served by the RA fleet (soak scenarios).

    Declares a :class:`repro.workloads.streaming.StreamConfig`-shaped trace —
    Zipf site popularity, diurnal timing, certificate-lifetime mix — that the
    engine's ``ClientLoadActor`` walks in ``O(batch_size)`` memory.  Mutually
    exclusive with the legacy evenly-spread :attr:`ScenarioConfig.client_handshakes`
    knob.
    """

    #: Distinct clients in the simulated population.
    clients: int
    #: Distinct sites ranked by Zipf popularity.
    sites: int
    #: Total client-hello events across the run.
    events_total: int
    #: Zipf popularity exponent.
    zipf_exponent: float = 1.1
    #: Diurnal intensity swing (must stay below 1.0).
    diurnal_amplitude: float = 0.7
    #: Events buffered per compact-array batch (the memory knob).
    batch_size: int = 8192
    #: Seed for the stream (independent of the engine's ``rng_seed`` so the
    #: trace is stable under scheduling-seed sweeps).
    seed: int = 404

    def __post_init__(self) -> None:
        """Validate the stream shape eagerly (mirrors ``StreamConfig``)."""
        if self.clients < 1:
            raise ConfigurationError("client_stream.clients must be >= 1")
        if self.sites < 1:
            raise ConfigurationError("client_stream.sites must be >= 1")
        if self.events_total < 1:
            raise ConfigurationError("client_stream.events_total must be >= 1")
        if self.batch_size < 1:
            raise ConfigurationError("client_stream.batch_size must be >= 1")
        if self.zipf_exponent <= 0.0:
            raise ConfigurationError("client_stream.zipf_exponent must be positive")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ConfigurationError(
                "client_stream.diurnal_amplitude must be in [0, 1)"
            )


@dataclass(frozen=True)
class AgentSpec:
    """One Revocation Agent in the deployment: its name and CDN region."""

    name: str
    region: str = "EUROPE"

    def __post_init__(self) -> None:
        """Validate the agent name and resolve the region eagerly."""
        if not self.name:
            raise ConfigurationError("agent name cannot be empty")
        _region_for(self.region)

    def geo_region(self) -> Region:
        """The resolved :class:`~repro.cdn.geography.Region`."""
        return _region_for(self.region)


@dataclass(frozen=True)
class ScenarioConfig:
    """A complete scenario: deployment shape, workload, faults, and studies.

    Instances are immutable and fully validated at construction; the runner
    (:mod:`repro.scenarios.runner`) consumes them without further checks.
    """

    name: str
    title: str
    summary: str
    description: str
    delta_seconds: int
    agents: Tuple[AgentSpec, ...]
    workload: WorkloadSpec
    #: Number of Δ periods to simulate; must be 0 for ``trace`` workloads
    #: (the trace window and Δ determine the period count).
    duration_periods: int = 0
    faults: Tuple[FaultSpec, ...] = ()
    store_engine: str = DEFAULT_ENGINE
    #: 0 derives a chain long enough for the whole run.
    chain_length: int = 0
    ca_name: str = "Scenario CA"
    #: When set, the runner issues a certificate for this host, runs a
    #: handshake before the workload and another after it.
    victim_host: str = ""
    #: Keep a TLS session open across the run and measure mid-session
    #: revocation detection (requires ``victim_host``).
    long_lived_session: bool = False
    #: Stage a CA equivocation against the last agent and run a gossip
    #: round afterwards (requires ``victim_host`` and at least two agents).
    gossip_audit: bool = False
    #: Re-run the revocation workload against each named store engine and
    #: record wall-clock timings plus root agreement.
    compare_engines: Tuple[str, ...] = ()
    #: Compare the observed attack window against a baseline scheme.
    baseline: str = ""
    #: Run the CA in expiry-split mode (§VIII "Ever-growing dictionaries"):
    #: revocations are routed into per-expiry-window shards, RAs prune whole
    #: shards once their window passes, and the runner tracks an unsharded
    #: oracle dictionary to compare verdicts and storage growth against.
    sharded: bool = False
    #: Width of each expiry shard, in Δ periods (sharded mode only).
    shard_width_periods: int = 0
    #: Certificate-lifetime spread, in Δ periods: each revoked certificate's
    #: expiry falls 1..N periods after its revocation (sharded mode only).
    cert_lifetime_periods: int = 0
    #: How often (in Δ periods) the CA retires and RAs prune expired shards.
    prune_every_periods: int = 1
    #: CA key-rotation schedule in Δ refresh periods (0 = keys never
    #: rotate); threaded into :class:`~repro.ritm.config.RITMConfig`.
    key_rotation_periods: int = 0
    #: Grace window (in Δ periods) during which roots signed by a
    #: just-retired key still verify.  Must stay below
    #: ``key_rotation_periods`` when rotation is enabled.
    key_overlap_periods: int = 1
    #: Simulated Unix time the scenario starts at (scripted workloads).
    epoch: int = 1_400_000_000
    #: Expand the declared agents into a fleet of this many RAs (0 keeps the
    #: declared agents as-is).  Clones cycle the declared specs and are named
    #: ``<template>-NNN``; see :meth:`effective_agents`.
    fleet_size: int = 0
    #: Phase offset between consecutive RAs' pulls, in seconds: agent ``i``
    #: pulls at ``head_time + i * stagger + jitter_i``.  Flattens the CA
    #: egress peak (the ``staggered-pulls`` scenario studies this).
    pull_stagger_seconds: float = 0.0
    #: Cap on the per-agent uniform jitter added to each pull time, drawn
    #: from the agent's seeded stream (see :attr:`rng_seed`).
    pull_jitter_seconds: float = 0.0
    #: Fleet-wide link profile (one of :data:`LINK_PROFILES`); ``""`` keeps
    #: pull latency purely computational as the serial runner did.
    link_profile: str = ""
    #: Per-agent link-profile overrides, keyed by effective agent name; each
    #: value must be a concrete profile (:data:`CONCRETE_LINK_PROFILES`).
    link_overrides: Mapping[str, str] = field(default_factory=dict)
    #: Master seed for every stochastic draw the engine makes (jitter,
    #: client-handshake sampling, gossip ring ordering).  Two runs of the
    #: same config and seed produce byte-identical report JSON.
    rng_seed: int = 404
    #: Executor backend for batch signature verification and WAL I/O
    #: (one of :data:`PARALLELISM_MODES`).
    parallelism: str = "serial"
    #: Total client status handshakes served across the run, spread evenly
    #: over periods and the RA fleet (0 disables client load).
    client_handshakes: int = 0
    #: Streamed Zipf/diurnal client load (see :class:`ClientStreamSpec`);
    #: mutually exclusive with :attr:`client_handshakes`.
    client_stream: "ClientStreamSpec | None" = None
    #: Serve steady-state RA pulls from verified WAL segments (the
    #: docs/REPLICATION.md transport) instead of per-pull batch objects,
    #: exercising segment replication without needing a region-outage fault.
    segment_streaming: bool = False
    #: Field overrides applied by :meth:`smoke` for fast CI runs.
    smoke_overrides: Mapping[str, Any] = field(default_factory=dict)
    tags: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        """Cross-field validation of the whole scenario."""
        if not self.name:
            raise ConfigurationError("scenario name cannot be empty")
        if self.delta_seconds <= 0:
            raise ConfigurationError("delta_seconds must be positive")
        if not self.agents:
            raise ConfigurationError("a scenario needs at least one agent")
        names = [agent.name for agent in self.agents]
        if len(set(names)) != len(names):
            raise ConfigurationError("agent names must be unique")
        if self.store_engine not in ENGINES:
            raise ConfigurationError(
                f"unknown store engine {self.store_engine!r}; "
                f"available engines: {sorted(ENGINES)}"
            )
        for engine in self.compare_engines:
            if engine not in ENGINES:
                raise ConfigurationError(
                    f"unknown comparison engine {engine!r}; "
                    f"available engines: {sorted(ENGINES)}"
                )
        if self.baseline not in BASELINES:
            raise ConfigurationError(
                f"unknown baseline {self.baseline!r}; expected one of {BASELINES}"
            )
        if self.workload.kind == "trace":
            if self.duration_periods != 0:
                raise ConfigurationError(
                    "trace workloads derive their duration from the trace window; "
                    "set duration_periods=0"
                )
        else:
            if self.duration_periods < 1:
                raise ConfigurationError("duration_periods must be at least 1")
            if self.workload.max_event_period() >= self.duration_periods:
                raise ConfigurationError("a workload event fires after the scenario ends")
            for fault in self.faults:
                if fault.at_period >= self.duration_periods:
                    raise ConfigurationError(
                        f"fault {fault.kind!r} at period {fault.at_period} "
                        f"starts after the scenario ends"
                    )
                if (
                    fault.kind == "region-outage"
                    and fault.at_period + fault.duration_periods
                    >= self.duration_periods
                ):
                    raise ConfigurationError(
                        "a region-outage must end before the scenario does "
                        "(the restored RAs need at least one period to catch "
                        "up from a peer)"
                    )
        effective_names = [spec.name for spec in self.effective_agents()]
        for fault in self.faults:
            if fault.kind in ("ra-restart", "equivocating-ca"):
                if fault.agent and fault.agent not in effective_names:
                    raise ConfigurationError(
                        f"{fault.kind} targets unknown agent {fault.agent!r}"
                    )
                if self.fleet_size and not fault.agent:
                    raise ConfigurationError(
                        f"{fault.kind} must name its target agent explicitly "
                        "when fleet_size expands the fleet (the implicit "
                        "'last agent' default is ambiguous across clones)"
                    )
            if fault.kind == "region-outage":
                failed = fault.geo_region()
                inside = [
                    spec for spec in self.effective_agents()
                    if spec.geo_region() == failed
                ]
                if not inside:
                    raise ConfigurationError(
                        f"region-outage fails {failed.name} but no agent is "
                        "deployed there"
                    )
                if len(inside) == len(self.effective_agents()):
                    raise ConfigurationError(
                        "region-outage would kill every agent; at least one "
                        "RA must survive in another region to absorb traffic "
                        "and serve anti-entropy"
                    )
            if fault.kind == "retired-key-forgery":
                if not self.key_rotation_periods:
                    raise ConfigurationError(
                        "a retired-key-forgery fault needs key_rotation_periods "
                        "(there is no retired key to forge with otherwise)"
                    )
                if fault.at_period <= self.key_rotation_periods + self.key_overlap_periods:
                    raise ConfigurationError(
                        "a retired-key-forgery fault must fire after the first "
                        "rotation's overlap window has expired "
                        f"(period > {self.key_rotation_periods + self.key_overlap_periods})"
                    )
            if fault.kind == "equivocating-ca":
                if len(self.agents) < 2:
                    raise ConfigurationError(
                        "an equivocating-ca fault needs at least two agents "
                        "(one honest view to gossip against)"
                    )
                if self.gossip_audit:
                    raise ConfigurationError(
                        "equivocating-ca faults and gossip_audit stage "
                        "conflicting forgeries; use one or the other"
                    )
                target = fault.agent or self.agents[-1].name
                target_region = next(
                    a.geo_region() for a in self.agents if a.name == target
                )
                if all(
                    a.geo_region() == target_region
                    for a in self.agents
                    if a.name != target
                ):
                    raise ConfigurationError(
                        "equivocating-ca plants forged objects at the targeted "
                        "agent's CDN region; at least one honest agent must sit "
                        "in a different region"
                    )
        if self.long_lived_session and not self.victim_host:
            raise ConfigurationError("long_lived_session requires victim_host")
        if self.gossip_audit:
            if not self.victim_host:
                raise ConfigurationError("gossip_audit requires victim_host")
            if len(self.agents) < 2:
                raise ConfigurationError("gossip_audit requires at least two agents")
            if any(event.revoke_victim for event in self.workload.events):
                raise ConfigurationError(
                    "gossip_audit revokes the victim in its audit phase; "
                    "remove revoke_victim workload events"
                )
        if self.baseline and not self.victim_host:
            raise ConfigurationError("a baseline comparison requires victim_host")
        if self.prune_every_periods < 1:
            raise ConfigurationError("prune_every_periods must be at least 1")
        if self.key_rotation_periods < 0:
            raise ConfigurationError("key_rotation_periods cannot be negative")
        if self.key_rotation_periods:
            if self.key_overlap_periods < 1:
                raise ConfigurationError("key_overlap_periods must be at least 1")
            if self.key_overlap_periods >= self.key_rotation_periods:
                raise ConfigurationError(
                    "key_overlap_periods must be smaller than key_rotation_periods"
                )
            if self.sharded:
                raise ConfigurationError(
                    "key rotation is not supported for sharded scenarios yet"
                )
        if self.sharded:
            if self.workload.kind != "scripted":
                raise ConfigurationError(
                    "sharded scenarios need a scripted workload (expiry churn "
                    "is derived from the period schedule)"
                )
            if self.shard_width_periods < 1:
                raise ConfigurationError(
                    "sharded scenarios need shard_width_periods >= 1"
                )
            if self.cert_lifetime_periods < 1:
                raise ConfigurationError(
                    "sharded scenarios need cert_lifetime_periods >= 1"
                )
            if self.victim_host or self.gossip_audit or self.baseline:
                raise ConfigurationError(
                    "sharded scenarios do not support victim/gossip/baseline "
                    "study phases yet"
                )
            if self.faults:
                raise ConfigurationError(
                    "sharded scenarios do not support fault injection yet"
                )
        elif self.shard_width_periods or self.cert_lifetime_periods:
            raise ConfigurationError(
                "shard_width_periods/cert_lifetime_periods require sharded=True"
            )
        if self.fleet_size and self.fleet_size < len(self.agents):
            raise ConfigurationError(
                "fleet_size cannot be smaller than the declared agent list"
            )
        if len(set(effective_names)) != len(effective_names):
            raise ConfigurationError(
                "fleet expansion produced a clone name that collides with a "
                "declared agent; rename the declared agents"
            )
        if self.pull_stagger_seconds < 0.0:
            raise ConfigurationError("pull_stagger_seconds cannot be negative")
        if self.pull_jitter_seconds < 0.0:
            raise ConfigurationError("pull_jitter_seconds cannot be negative")
        worst_offset = (
            (len(effective_names) - 1) * self.pull_stagger_seconds
            + self.pull_jitter_seconds
        )
        if worst_offset >= self.delta_seconds:
            raise ConfigurationError(
                f"the worst-case pull offset ({worst_offset:.3f}s of stagger "
                f"plus jitter) must stay inside one Δ period "
                f"({self.delta_seconds}s) or pulls spill into the next head"
            )
        if self.link_profile not in LINK_PROFILES:
            raise ConfigurationError(
                f"unknown link profile {self.link_profile!r}; "
                f"expected one of {LINK_PROFILES}"
            )
        for agent_name, profile in self.link_overrides.items():
            if agent_name not in effective_names:
                raise ConfigurationError(
                    f"link override targets unknown agent {agent_name!r}"
                )
            if profile not in CONCRETE_LINK_PROFILES:
                raise ConfigurationError(
                    f"link override for {agent_name!r} names {profile!r}; "
                    f"expected one of {CONCRETE_LINK_PROFILES}"
                )
        if self.parallelism not in PARALLELISM_MODES:
            raise ConfigurationError(
                f"unknown parallelism mode {self.parallelism!r}; "
                f"expected one of {PARALLELISM_MODES}"
            )
        if self.client_handshakes < 0:
            raise ConfigurationError("client_handshakes cannot be negative")
        if self.client_handshakes and self.sharded:
            raise ConfigurationError(
                "client handshake load is not supported for sharded "
                "scenarios yet (status sampling needs the unsharded pool)"
            )
        if self.client_stream is not None:
            if self.client_handshakes:
                raise ConfigurationError(
                    "client_stream and client_handshakes are mutually "
                    "exclusive ways to drive client load; set one"
                )
            if self.sharded:
                raise ConfigurationError(
                    "streamed client load is not supported for sharded "
                    "scenarios yet (status sampling needs the unsharded pool)"
                )
        if self.segment_streaming and self.sharded:
            raise ConfigurationError(
                "segment streaming is not supported for sharded scenarios "
                "(the CA publishes a replication log only in unsharded mode)"
            )

    # -- derived values ------------------------------------------------------------

    def effective_chain_length(self, duration_periods: int) -> int:
        """The hash-chain length to deploy: explicit, or derived from duration."""
        if self.chain_length:
            return self.chain_length
        return max(64, duration_periods + 16)

    def attack_window_seconds(self) -> int:
        """The paper's 2Δ bound for this scenario's Δ."""
        return 2 * self.delta_seconds

    def effective_agents(self) -> Tuple[AgentSpec, ...]:
        """The RA fleet after :attr:`fleet_size` expansion.

        With ``fleet_size`` unset this is exactly :attr:`agents`.  Otherwise
        the declared specs are kept (they anchor fault targets and study
        phases) and clones fill the fleet, cycling the declared specs for
        their regions and named ``<template>-NNN`` so fleet ordering — and
        with it every same-time scheduling decision — is deterministic.
        """
        if not self.fleet_size or self.fleet_size == len(self.agents):
            return self.agents
        fleet = list(self.agents)
        for index in range(self.fleet_size - len(self.agents)):
            template = self.agents[index % len(self.agents)]
            fleet.append(
                AgentSpec(name=f"{template.name}-{index:03d}", region=template.region)
            )
        return tuple(fleet)

    # -- copies --------------------------------------------------------------------

    def with_overrides(self, **overrides: Any) -> "ScenarioConfig":
        """A re-validated copy with the given fields replaced.

        ``workload`` may be given as a dict of :class:`WorkloadSpec` field
        overrides instead of a full spec, and ``client_stream`` likewise as a
        dict of :class:`ClientStreamSpec` field overrides.
        """
        if isinstance(overrides.get("workload"), Mapping):
            overrides = dict(overrides)
            overrides["workload"] = dataclasses.replace(
                self.workload, **overrides["workload"]
            )
        if (
            isinstance(overrides.get("client_stream"), Mapping)
            and self.client_stream is not None
        ):
            overrides = dict(overrides)
            overrides["client_stream"] = dataclasses.replace(
                self.client_stream, **overrides["client_stream"]
            )
        return dataclasses.replace(self, **overrides)

    def smoke(self) -> "ScenarioConfig":
        """The scaled-down variant used by ``--smoke`` runs and CI."""
        if not self.smoke_overrides:
            return self
        return self.with_overrides(**dict(self.smoke_overrides))
