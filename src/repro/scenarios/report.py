"""Structured scenario output: the :class:`ScenarioReport`.

Every scenario run produces one report with a pinned top-level schema
(:data:`REPORT_SCHEMA_KEYS`), serialisable to JSON (for CI artifacts and
machine diffing) and renderable to Markdown (for humans).  The Markdown
rendering reuses the table formatter from :mod:`repro.analysis.reporting`
so scenario output matches the benchmark artifacts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Tuple

from repro.analysis.reporting import format_table, human_bytes

#: The pinned top-level JSON schema; tests assert these keys exactly.
REPORT_SCHEMA_KEYS = (
    "scenario",
    "title",
    "summary",
    "config",
    "metrics",
    "events",
    "checks",
    "extras",
)

#: The pinned keys of ``metrics["dissemination"]``.
DISSEMINATION_METRIC_KEYS = (
    "pulls",
    "bytes_downloaded",
    "average_pull_latency_seconds",
    "freshness_applied",
    "issuances_applied",
    "serials_applied",
    "resyncs",
    "errors",
    "root_cache_hits",
    "root_signatures_verified",
    "stale_heads_ignored",
    "replays_rejected",
    "key_rotations_applied",
)

#: The pinned keys of each cache section under ``metrics["hot_path"]``
#: (matching :meth:`repro.perf.cache.CacheStats.as_dict`).
CACHE_METRIC_KEYS = (
    "hits",
    "misses",
    "evictions",
    "invalidations",
    "hit_rate",
)

#: The pinned keys of ``metrics["replication"]`` — the WAL-segment
#: streaming accounting, present only in region-outage reports.
REPLICATION_METRIC_KEYS = (
    "segments_published",
    "segments_applied",
    "segments_from_peer",
    "segment_bytes_downloaded",
    "peer_syncs",
    "cold_sync_fallbacks",
    "segments_rejected",
)

#: The pinned keys of ``metrics["fleet"]`` — the event engine's per-run
#: concurrency accounting, present in every report.
FLEET_METRIC_KEYS = (
    "fleet_size",
    "parallelism",
    "scheduler_events_processed",
    "mailbox_depth_max",
    "per_agent_mailbox_depth",
    "overlap_factor",
    "peak_concurrent_pulls",
    "handshakes_served",
)


@dataclass
class ScenarioCheck:
    """One pass/fail assertion the runner made about the scenario's outcome."""

    name: str
    passed: bool
    detail: str = ""

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready representation."""
        return {"name": self.name, "passed": self.passed, "detail": self.detail}


@dataclass
class ScenarioReport:
    """The structured result of one scenario run."""

    scenario: str
    title: str
    summary: str
    config: Dict[str, Any]
    metrics: Dict[str, Any]
    events: List[Dict[str, Any]] = field(default_factory=list)
    checks: List[ScenarioCheck] = field(default_factory=list)
    extras: Dict[str, Any] = field(default_factory=dict)

    # -- outcomes ------------------------------------------------------------------

    @property
    def all_checks_passed(self) -> bool:
        """Whether every recorded check passed."""
        return all(check.passed for check in self.checks)

    def failed_checks(self) -> List[ScenarioCheck]:
        """The checks that did not pass."""
        return [check for check in self.checks if not check.passed]

    # -- serialisation -------------------------------------------------------------

    def to_json_dict(self) -> Dict[str, Any]:
        """The report as a JSON-serialisable dict with the pinned schema."""
        return {
            "scenario": self.scenario,
            "title": self.title,
            "summary": self.summary,
            "config": self.config,
            "metrics": self.metrics,
            "events": self.events,
            "checks": [check.as_dict() for check in self.checks],
            "extras": self.extras,
        }

    def to_json(self) -> str:
        """The report as an indented JSON document."""
        return json.dumps(self.to_json_dict(), indent=2, sort_keys=True)

    def to_markdown(self) -> str:
        """The report rendered for humans."""
        lines: List[str] = [f"# Scenario report: {self.title}", ""]
        lines.append(self.summary)
        lines.append("")

        lines.append("## Configuration")
        lines.append("")
        lines.append("```")
        config_rows = [(key, _render_value(value)) for key, value in sorted(self.config.items())]
        lines.append(format_table(["parameter", "value"], config_rows))
        lines.append("```")
        lines.append("")

        lines.append("## Metrics")
        lines.append("")
        lines.append("```")
        lines.append(format_table(["metric", "value"], _flatten(self.metrics)))
        lines.append("```")
        lines.append("")

        if self.events:
            lines.append("## Timeline")
            lines.append("")
            lines.append("```")
            event_rows = [
                (event.get("period", ""), event.get("kind", ""), event.get("detail", ""))
                for event in self.events
            ]
            lines.append(format_table(["period", "event", "detail"], event_rows))
            lines.append("```")
            lines.append("")

        lines.append("## Checks")
        lines.append("")
        for check in self.checks:
            mark = "PASS" if check.passed else "FAIL"
            detail = f" — {check.detail}" if check.detail else ""
            lines.append(f"- **{mark}** `{check.name}`{detail}")
        lines.append("")

        for section, payload in sorted(self.extras.items()):
            lines.append(f"## {section.replace('_', ' ').title()}")
            lines.append("")
            lines.append("```")
            if isinstance(payload, dict):
                lines.append(format_table(["key", "value"], _flatten(payload)))
            else:
                lines.append(_render_value(payload))
            lines.append("```")
            lines.append("")
        return "\n".join(lines)

    def write(self, out_dir: Path) -> Tuple[Path, Path]:
        """Write ``<name>.json`` and ``<name>.md`` under ``out_dir``."""
        out_dir = Path(out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        json_path = out_dir / f"{self.scenario}.json"
        md_path = out_dir / f"{self.scenario}.md"
        json_path.write_text(self.to_json() + "\n", encoding="utf-8")
        md_path.write_text(self.to_markdown(), encoding="utf-8")
        return json_path, md_path


def _render_value(value: Any) -> str:
    """Human-friendly scalar rendering (floats trimmed, bytes humanised)."""
    if isinstance(value, float):
        return f"{value:.3f}"
    if isinstance(value, (list, tuple)):
        return ", ".join(_render_value(item) for item in value) or "—"
    return str(value)


def _flatten(mapping: Dict[str, Any], prefix: str = "") -> List[Tuple[str, str]]:
    """Flatten nested metric dicts into dotted (key, rendered value) rows."""
    rows: List[Tuple[str, str]] = []
    for key, value in mapping.items():
        dotted = f"{prefix}{key}"
        if isinstance(value, dict):
            rows.extend(_flatten(value, prefix=f"{dotted}."))
        elif dotted.endswith(("bytes", "bytes_downloaded", "storage_bytes")) and isinstance(
            value, (int, float)
        ):
            rows.append((dotted, human_bytes(value)))
        else:
            rows.append((dotted, _render_value(value)))
    return rows
