"""Fault injectors: the "what goes wrong" half of a scenario.

Each injector manipulates the deployment exactly the way the paper's
adversary (or plain operational failure) would:

* :func:`tamper_latest_batch` rewrites the most recently published issuance
  object on the CDN, substituting a decoy serial while leaving the honest
  signed root in place — the RA's batch verification must reject it, roll the
  replica back, and recover through the sync protocol;
* CA outages and RA restarts are *scheduling* faults: the runner implements
  them by skipping the CA's publication duty (queueing its revocations) or
  the RA's pulls for the fault window, using :func:`FaultSpec.covers`.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.cdn.network import CDNNetwork
from repro.pki.serial import SerialNumber
from repro.ritm.ca_service import RITMCertificationAuthority, issuance_path
from repro.ritm.messages import decode_issuance, encode_issuance

#: The serial substituted into a tampered batch.
DECOY_SERIAL = 0xDEAD


def tamper_latest_batch(
    ca: RITMCertificationAuthority, cdn: CDNNetwork, now: float
) -> Optional[str]:
    """Replace the latest published issuance batch with a forged copy.

    The forged batch swaps the first revoked serial for :data:`DECOY_SERIAL`
    but keeps the honest signed root, so the batch decodes cleanly and fails
    only at content verification.  Returns a human-readable description of
    the tampering, or ``None`` when there is no batch to tamper with.
    """
    batch_number = ca.issuance_count()
    if batch_number == 0:
        return None
    path = issuance_path(ca.name, batch_number)
    if not cdn.origin.exists(path):
        return None
    honest = decode_issuance(cdn.origin.fetch(path).content)
    if not honest.serials:
        return None
    decoy = SerialNumber(DECOY_SERIAL)
    forged_serials = (decoy,) + tuple(honest.serials[1:])
    forged = replace(honest, serials=forged_serials)
    cdn.publish(path, encode_issuance(forged), now)
    return (
        f"batch {batch_number}: serial {honest.serials[0]} replaced with "
        f"decoy {decoy} on the CDN"
    )
