"""Fault injectors: the "what goes wrong" half of a scenario.

Each injector manipulates the deployment exactly the way the paper's
adversary (or plain operational failure) would:

* :func:`tamper_latest_batch` rewrites the most recently published issuance
  object on the CDN, substituting a decoy serial while leaving the honest
  signed root in place — the RA's batch verification must reject it, roll the
  replica back, and recover through the sync protocol;
* :func:`replay_captured_head` re-presents a head object captured earlier in
  the run (the §V replay attack) — the RA's replay window must reject it
  without touching its replica;
* :func:`forge_head_with_retired_key` republishes the current head re-signed
  under a rotated-out CA key whose overlap window has expired — the RA's
  time-scoped keyring must refuse the signature;
* :func:`equivocate_at_edges` plants a fully self-consistent forged universe
  (shadow dictionary, parallel signed root of the same size, its own
  freshness chain) at one region's CDN edges, so the targeted RA adopts the
  forged state without a single verification error — only cross-RA gossip
  can expose the conflicting roots (docs/THREATS.md);
* CA outages and RA restarts are *scheduling* faults: the runner implements
  them by skipping the CA's publication duty (queueing its revocations) or
  the RA's pulls for the fault window, using :func:`FaultSpec.covers`.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional

from repro.cdn.geography import Region
from repro.cdn.network import CDNNetwork
from repro.dictionary.authdict import CADictionary
from repro.pki.serial import SerialNumber
from repro.ritm.ca_service import (
    RITMCertificationAuthority,
    head_path,
    issuance_path,
)
from repro.ritm.messages import (
    DictionaryHead,
    decode_head,
    decode_issuance,
    encode_head,
    encode_issuance,
)

#: The serial substituted into a tampered batch.
DECOY_SERIAL = 0xDEAD


def tamper_latest_batch(
    ca: RITMCertificationAuthority, cdn: CDNNetwork, now: float
) -> Optional[str]:
    """Replace the latest published issuance batch with a forged copy.

    The forged batch swaps the first revoked serial for :data:`DECOY_SERIAL`
    but keeps the honest signed root, so the batch decodes cleanly and fails
    only at content verification.  Returns a human-readable description of
    the tampering, or ``None`` when there is no batch to tamper with.
    """
    batch_number = ca.issuance_count()
    if batch_number == 0:
        return None
    path = issuance_path(ca.name, batch_number)
    if not cdn.origin.exists(path):
        return None
    honest = decode_issuance(cdn.origin.fetch(path).content)
    if not honest.serials:
        return None
    decoy = SerialNumber(DECOY_SERIAL)
    forged_serials = (decoy,) + tuple(honest.serials[1:])
    forged = replace(honest, serials=forged_serials)
    cdn.publish(path, encode_issuance(forged), now)
    return (
        f"batch {batch_number}: serial {honest.serials[0]} replaced with "
        f"decoy {decoy} on the CDN"
    )


def replay_captured_head(
    ca_name: str, cdn: CDNNetwork, captured: bytes, now: float
) -> str:
    """Re-present a previously published head object on the CDN (§V replay).

    ``captured`` are the raw bytes of a head the CA published earlier in the
    run; the injector simply republishes them over the current head object,
    exactly what a compromised distribution point re-serving stale signed
    state would do.  The replayed copy carries its original publication
    sequence, so an RA whose cursor has moved past the replay window must
    raise :class:`~repro.errors.ReplayError` and leave its replica untouched.
    """
    stale = decode_head(captured)
    cdn.publish(head_path(ca_name), captured, now)
    return (
        f"head for {ca_name!r} rolled back to publication sequence "
        f"{stale.sequence} (dictionary size {stale.size}) on the CDN"
    )


def forge_head_with_retired_key(
    ca: RITMCertificationAuthority, cdn: CDNNetwork, now: float
) -> Optional[str]:
    """Republish the current head re-signed under a retired CA signing key.

    Models the attack key rotation exists to stop: an attacker who extracts
    an *old* signing key after the CA rotated away from it.  The forged head
    carries the honest dictionary content (same root bytes — so it can never
    double as equivocation evidence), a bumped timestamp so replicas attempt
    to install it, and a far-future publication sequence so it sails through
    the replay window.  With the retired key's overlap window expired, the
    RA's keyring must reject the signature outright.  Returns ``None`` when
    the CA has not rotated yet (no retired key to forge with).
    """
    if not ca._retired_signing_keys:  # noqa: SLF001 - scenario-staged key compromise
        return None
    retired = ca._retired_signing_keys[-1]  # noqa: SLF001
    path = head_path(ca.name)
    if not cdn.origin.exists(path):
        return None
    honest = decode_head(cdn.origin.fetch(path).content)
    forged_root = replace(
        honest.signed_root, timestamp=honest.signed_root.timestamp + 1
    ).sign(retired.private)
    forged = replace(
        honest, signed_root=forged_root, sequence=honest.sequence + 64
    )
    cdn.publish(path, encode_head(forged), now)
    return (
        f"head for {ca.name!r} re-signed with the retired epoch-"
        f"{ca.key_epoch - 1} key and republished "
        f"(sequence {forged.sequence})"
    )


def equivocate_at_edges(
    ca: RITMCertificationAuthority,
    cdn: CDNNetwork,
    region: Region,
    batches: List[List[SerialNumber]],
    now: float,
    ttl_seconds: float,
) -> Optional[Dict[str, object]]:
    """Plant a forged parallel dictionary at one region's CDN edges.

    The equivocating CA rebuilds its entire revocation history in a *shadow*
    dictionary — identical batches, except the most recently revoked serial
    is silently replaced by :data:`DECOY_SERIAL` — and signs the shadow root
    with its real (active) key.  The shadow head and the shadow copy of the
    latest issuance batch are planted only at the targeted region's edges;
    the origin and every other region keep the honest objects.

    Because the shadow universe is internally consistent (matching sizes and
    numbering, a valid freshness chain from its own anchor, a genuine CA
    signature), the targeted RA adopts it without a single verification
    error: the forgery is invisible to every local check and only the
    cross-RA gossip ring can expose the two conflicting same-size roots.

    Returns a summary dict (hidden serial, conflicting size, detail line),
    or ``None`` when nothing has been revoked yet.
    """
    if not batches or not batches[-1]:
        return None
    path = head_path(ca.name)
    if not cdn.origin.exists(path):
        return None
    honest_head = decode_head(cdn.origin.fetch(path).content)
    hidden = batches[-1][-1]
    decoy = SerialNumber(DECOY_SERIAL)

    shadow = CADictionary(
        ca_name=ca.name,
        keys=ca._signing_keys,  # noqa: SLF001 - the CA signs its own forgery
        delta=ca.config.delta_seconds,
        chain_length=honest_head.signed_root.chain_length,
        digest_size=ca.config.digest_size,
    )
    shadow_issuance = None
    for index, batch in enumerate(batches):
        serials = list(batch)
        if index == len(batches) - 1:
            serials[-1] = decoy
        shadow_issuance = shadow.insert(serials, int(now))

    forged_head = DictionaryHead(
        ca_name=ca.name,
        size=shadow.size,
        signed_root=shadow.signed_root,
        freshness=shadow.latest_freshness,
        sequence=honest_head.sequence,
    )
    batch_number = ca.issuance_count()
    for edge in cdn.edges_in(region):
        edge.plant_object(path, encode_head(forged_head), now, ttl_seconds)
        edge.plant_object(
            issuance_path(ca.name, batch_number),
            encode_issuance(shadow_issuance),
            now,
            ttl_seconds,
        )
    return {
        "hidden_serial": hidden,
        "conflicting_size": shadow.size,
        "forged_root": shadow.signed_root.root.hex(),
        "detail": (
            f"shadow dictionary of size {shadow.size} planted at "
            f"{len(cdn.edges_in(region))} {region.value} edge(s): serial "
            f"{hidden} silently replaced with decoy {decoy}"
        ),
    }
