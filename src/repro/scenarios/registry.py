"""The scenario registry: named, discoverable scenario configurations.

Scenarios register once at import time (see :mod:`repro.scenarios.library`)
and are looked up by name from the CLI, the examples, and the tests.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import ConfigurationError
from repro.scenarios.config import ScenarioConfig

_REGISTRY: Dict[str, ScenarioConfig] = {}


def register(config: ScenarioConfig) -> ScenarioConfig:
    """Add ``config`` to the registry; duplicate names are rejected."""
    if config.name in _REGISTRY:
        raise ConfigurationError(f"scenario {config.name!r} is already registered")
    _REGISTRY[config.name] = config
    return config


def get(name: str) -> ScenarioConfig:
    """The registered scenario called ``name``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario {name!r}; registered scenarios: {names()}"
        ) from None


def names() -> List[str]:
    """All registered scenario names, sorted."""
    return sorted(_REGISTRY)


def all_scenarios() -> List[ScenarioConfig]:
    """All registered scenario configs, sorted by name."""
    return [_REGISTRY[name] for name in names()]


def unregister(name: str) -> None:
    """Remove a scenario (used by tests to keep the registry clean)."""
    _REGISTRY.pop(name, None)
