"""Declarative operational scenarios and the ``python -m repro`` engine.

The package turns the paper's motivating stories — Heartbleed-scale mass
revocation, mid-session revocation on long-lived connections, equivocating
CAs, degraded infrastructure — into registered, runnable configurations:

* :mod:`repro.scenarios.config` — the frozen :class:`ScenarioConfig` family;
* :mod:`repro.scenarios.engine` — the discrete-event fleet engine that
  executes a config against the real ``ritm``/``cdn``/``workloads`` layers
  (:mod:`repro.scenarios.runner` remains as its import shim);
* :mod:`repro.scenarios.report` — the pinned-schema :class:`ScenarioReport`
  (JSON + Markdown);
* :mod:`repro.scenarios.registry` — named lookup used by the CLI and tests;
* :mod:`repro.scenarios.library` — the built-in scenarios (imported here so
  registration happens on package import);
* :mod:`repro.scenarios.cli` — the ``list`` / ``describe`` / ``run`` verbs.
"""

from repro.scenarios import library as _library  # noqa: F401  (registers built-ins)
from repro.scenarios.config import (
    AgentSpec,
    FaultSpec,
    RevocationEvent,
    ScenarioConfig,
    WorkloadSpec,
)
from repro.scenarios.registry import all_scenarios, get, names, register
from repro.scenarios.report import (
    CACHE_METRIC_KEYS,
    DISSEMINATION_METRIC_KEYS,
    FLEET_METRIC_KEYS,
    REPLICATION_METRIC_KEYS,
    REPORT_SCHEMA_KEYS,
    ScenarioCheck,
    ScenarioReport,
)
from repro.scenarios.runner import ScenarioRunner, run_scenario

__all__ = [
    "ScenarioConfig",
    "WorkloadSpec",
    "RevocationEvent",
    "AgentSpec",
    "FaultSpec",
    "ScenarioReport",
    "ScenarioCheck",
    "REPORT_SCHEMA_KEYS",
    "DISSEMINATION_METRIC_KEYS",
    "CACHE_METRIC_KEYS",
    "FLEET_METRIC_KEYS",
    "REPLICATION_METRIC_KEYS",
    "ScenarioRunner",
    "run_scenario",
    "register",
    "get",
    "names",
    "all_scenarios",
]
