"""Compatibility shim for the old serial runner module path.

The 1,800-line lockstep ``ScenarioRunner`` that used to live here was
refactored into the discrete-event fleet engine under
:mod:`repro.scenarios.engine` — per-agent actors on a shared
:class:`repro.net.EventScheduler`, study phases as ordered observers, and
opt-in parallelism for signature verification and durable-store I/O.
Importing :class:`ScenarioRunner`/:func:`run_scenario` from this module
keeps working and lands on the engine-backed implementations.
"""

from __future__ import annotations

from repro.scenarios.engine.runner import ScenarioRunner, run_scenario

__all__ = ["ScenarioRunner", "run_scenario"]
