"""The scenario runner: executes a :class:`ScenarioConfig` end to end.

The runner is the single place that wires the existing layers together —
workloads drive a :class:`~repro.ritm.ca_service.RITMCertificationAuthority`,
the CA publishes through a :class:`~repro.cdn.network.CDNNetwork`, a fleet of
:class:`~repro.ritm.agent.RevocationAgent` middleboxes pulls every Δ, and
optional study phases (victim handshakes, a long-lived session, a gossip
audit, engine comparison, a baseline comparison) ride on top.  Faults from
the config are injected at their scheduled periods.

Every run produces a :class:`~repro.scenarios.report.ScenarioReport` whose
schema is pinned by tests; examples, the ``python -m repro`` CLI, and CI all
consume the same reports.
"""

from __future__ import annotations

import shutil
import tempfile
import time as _time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.cdn import CDNNetwork, GeoLocation
from repro.crypto import HashChain, KeyPair
from repro.crypto.merkle import SortedMerkleTree
from repro.dictionary.authdict import CADictionary
from repro.dictionary.signed_root import SignedRoot
from repro.errors import ConfigurationError
from repro.net.clock import SimulatedClock
from repro.perf import CacheStats
from repro.pki import CertificationAuthority, SerialNumber, TrustStore
from repro.ritm import (
    GossipExchange,
    RITMCertificationAuthority,
    RITMConfig,
    RevocationAgent,
    attach_agent_to_cas,
    build_close_to_client_deployment,
)
from repro.ritm.ca_service import head_path
from repro.ritm.client import RejectionReason
from repro.ritm.dissemination import PullResult, RADisseminationClient
from repro.scenarios.config import FaultSpec, ScenarioConfig
from repro.scenarios.faults import (
    DECOY_SERIAL,
    equivocate_at_edges,
    forge_head_with_retired_key,
    replay_captured_head,
    tamper_latest_batch,
)
from repro.scenarios.report import ScenarioCheck, ScenarioReport
from repro.store import create_store
from repro.workloads import generate_trace, serials_for_count


@dataclass
class _PendingProvability:
    """A revocation waiting to become provable at each agent."""

    event_time: float
    cumulative_size: int


@dataclass
class _AgentRuntime:
    """Per-agent state the runner tracks across periods."""

    spec_name: str
    agent: RevocationAgent
    client: RADisseminationClient
    location: GeoLocation
    #: Index into the pending-provability list: entries before it are provable.
    provability_cursor: int = 0
    max_lag_seconds: float = 0.0
    missed_pulls: int = 0
    #: Pull results of clients discarded by a crash restart, so dissemination
    #: totals cover the whole run, not just the current process incarnation.
    archived_pulls: List[PullResult] = field(default_factory=list)
    #: Crash-restart state: checkpoint directory (durable mode), whether a
    #: restore must run before the next pull, which crash mode hit this
    #: agent, and the metrics of its first post-crash recovery pull.
    checkpoint_dir: Optional[str] = None
    pending_restore: bool = False
    crashed_mode: Optional[str] = None
    recovery: Optional[Dict[str, object]] = None

    def pull_results(self) -> List[PullResult]:
        """Every pull this agent completed, across crash restarts."""
        return self.archived_pulls + self.client.pull_history

    def total_bytes_downloaded(self) -> int:
        """Bytes fetched from the CDN across the agent's whole lifetime."""
        return sum(pull.bytes_downloaded for pull in self.pull_results())


class ScenarioRunner:
    """Executes one scenario configuration and assembles its report."""

    def __init__(self, config: ScenarioConfig) -> None:
        """Bind the runner to a validated scenario config."""
        self.config = config

    # -- public API ----------------------------------------------------------------

    def run(self) -> ScenarioReport:
        """Execute the scenario and return its structured report."""
        cfg = self.config
        periods, counts = self._build_timeline()
        duration = len(periods)
        ritm_kwargs: Dict[str, object] = {}
        if cfg.sharded:
            ritm_kwargs = {
                "sharded": True,
                "shard_width_seconds": cfg.shard_width_periods * cfg.delta_seconds,
                "prune_every_periods": cfg.prune_every_periods,
            }
        if cfg.key_rotation_periods:
            ritm_kwargs["key_rotation_periods"] = cfg.key_rotation_periods
            ritm_kwargs["key_overlap_periods"] = cfg.key_overlap_periods
        ritm_config = RITMConfig(
            delta_seconds=cfg.delta_seconds,
            chain_length=cfg.effective_chain_length(duration),
            store_engine=cfg.store_engine,
            **ritm_kwargs,
        )

        self._ritm_config = ritm_config
        self._events: List[Dict[str, object]] = []
        self._pending: List[_PendingProvability] = []
        self._batches: List[List[SerialNumber]] = []
        self._numbered: List[Tuple[int, SerialNumber]] = []
        self._backlog: List[Tuple[float, List[SerialNumber], str, bool]] = []
        self._revocations_issued = 0
        self._checkpoint_dirs: List[str] = []
        #: Sharded mode: serial value → assigned certificate expiry, the
        #: unsharded oracle dictionary, and the per-period storage timeline.
        self._expiries: Dict[int, int] = {}
        self._expiry_cycle = 0
        self._oracle: Optional[CADictionary] = None
        self._storage_timeline: List[Dict[str, object]] = []
        #: Adversarial control-plane state: every head publication's raw
        #: bytes (ammunition for the replay injector), the CA's rotation
        #: history with the retired epochs' signed roots, the rotation cache
        #: probes, replay-fault replica-integrity counters, the planted
        #: equivocation summary, and the gossip ring's detections.
        self._head_archive: List[bytes] = []
        self._rotations: List[Dict[str, object]] = []
        self._rotation_probes: List[Dict[str, object]] = []
        self._replay_probes = 0
        self._replay_mutations = 0
        self._forgery_attempts = 0
        self._forgery_errors = 0
        self._equivocation: Optional[Dict[str, object]] = None
        self._hidden_serial: Optional[SerialNumber] = None
        self._misbehavior_reports: List[object] = []
        self._first_detection_period: Optional[int] = None
        if cfg.sharded:
            self._oracle = CADictionary(
                ca_name=f"{cfg.ca_name} (unsharded oracle)",
                keys=KeyPair.generate(f"{cfg.name}-oracle".encode()),
                delta=cfg.delta_seconds,
                chain_length=cfg.effective_chain_length(duration),
                engine=cfg.store_engine,
            )
        elif any(fault.crash for fault in cfg.faults):
            # Crash-recovery study: an always-in-memory oracle fed the same
            # revocations, so the (possibly durable-engine) replicas'
            # post-recovery verdicts can be differentially checked.
            self._oracle = CADictionary(
                ca_name=cfg.ca_name,
                keys=KeyPair.generate(f"{cfg.name}-oracle".encode()),
                delta=cfg.delta_seconds,
                chain_length=cfg.effective_chain_length(duration),
                engine="incremental",
            )

        setup_time = periods[0][1] - 2
        authority = CertificationAuthority(cfg.ca_name, key_seed=cfg.name.encode())
        cdn = CDNNetwork()
        ca = RITMCertificationAuthority(authority, ritm_config, cdn)
        ca.bootstrap(now=setup_time)

        runtimes: List[_AgentRuntime] = []
        for spec in cfg.agents:
            agent = RevocationAgent(spec.name, ritm_config)
            location = GeoLocation(spec.geo_region())
            client = attach_agent_to_cas(agent, [ca], cdn, location)
            client.pull(now=setup_time + 1)
            runtimes.append(_AgentRuntime(spec.name, agent, client, location))

        try:
            victim = self._setup_victim(ca, ritm_config, runtimes, setup_time + 1)
            serial_pool = self._serial_pool(counts, victim)

            for period, (_, bin_start) in enumerate(periods):
                self._run_period(
                    period,
                    bin_start,
                    counts[period],
                    ca,
                    cdn,
                    runtimes,
                    serial_pool,
                    victim,
                )

            end_time = periods[-1][1] + cfg.delta_seconds
            extras: Dict[str, object] = {}
            if cfg.gossip_audit:
                # The audit phase revokes the victim, so it must precede the
                # closing handshake for the rejection check to be meaningful.
                extras["gossip_audit"] = self._gossip_audit(
                    ca, authority, runtimes, victim, end_time + 1
                )
            if victim is not None:
                self._final_handshake(ca, ritm_config, runtimes[0], victim, end_time + 3)
            if cfg.compare_engines:
                extras["engine_comparison"] = self._compare_engines()
            if cfg.baseline and victim is not None and victim.revoked_at is not None:
                extras["baseline"] = self._baseline_comparison(victim)
            if victim is not None:
                extras["victim"] = victim.as_dict()
            if cfg.sharded:
                extras["sharded_storage"] = self._sharded_extras(ca, runtimes, end_time)
            if any(fault.crash for fault in cfg.faults):
                extras["crash_recovery"] = self._crash_recovery_extras(ca, runtimes)
            if any(fault.kind == "equivocating-ca" for fault in cfg.faults):
                extras["equivocation"] = self._equivocation_extras(ca, runtimes)
            if cfg.key_rotation_periods:
                extras["key_rotation"] = self._key_rotation_extras(ca, runtimes)

            metrics = self._collect_metrics(ca, runtimes, cdn)
            checks = self._build_checks(ca, runtimes, victim, extras)
            return ScenarioReport(
                scenario=cfg.name,
                title=cfg.title,
                summary=cfg.summary,
                config=self._config_dict(duration),
                metrics=metrics,
                events=self._events,
                checks=checks,
                extras=extras,
            )
        finally:
            self._cleanup(ca, runtimes)

    # -- schedule and workload -----------------------------------------------------

    def _build_timeline(
        self,
    ) -> Tuple[List[Tuple[int, float]], List[Tuple[int, bool, str]]]:
        """The run's schedule: (period, start time) pairs and per-period work.

        Each per-period work item is a ``(serial count, revoke-victim flag,
        reason)`` triple.  Trace workloads derive both lists from the
        calibrated trace; scripted workloads derive them from the config.
        """
        cfg = self.config
        if cfg.workload.kind == "trace":
            start, end = cfg.workload.trace_window()
            bins = generate_trace().counts_per_bin(start, end, cfg.delta_seconds)
            if not bins:
                raise ConfigurationError("the trace window produced no periods")
            periods = [
                (index, float(bin_start)) for index, (bin_start, _) in enumerate(bins)
            ]
            counts = [
                (int(count * cfg.workload.ca_share), False, "trace")
                for _, count in bins
            ]
            return periods, counts
        periods = [
            (period, float(cfg.epoch + period * cfg.delta_seconds))
            for period in range(cfg.duration_periods)
        ]
        counts: List[Tuple[int, bool, str]] = [(0, False, "")] * len(periods)
        for event in cfg.workload.events:
            count, victim_flag, reason = counts[event.at_period]
            counts[event.at_period] = (
                count + event.count,
                victim_flag or event.revoke_victim,
                event.reason if event.reason != "unspecified" else reason,
            )
        return periods, counts

    def _serial_pool(self, counts, victim: Optional["_VictimRuntime"]):
        """A deterministic iterator of serials, skipping the victim's."""
        total = sum(count for count, _, _ in counts)
        pool = serials_for_count(total + 8, seed=self.config.workload.serial_seed)
        victim_value = victim.serial.value if victim is not None else None
        forbidden = {victim_value, DECOY_SERIAL}
        return iter(value for value in pool if value not in forbidden)

    # -- one Δ period --------------------------------------------------------------

    def _run_period(
        self,
        period: int,
        bin_start: float,
        workload: Tuple[int, bool, str],
        ca: RITMCertificationAuthority,
        cdn: CDNNetwork,
        runtimes: List[_AgentRuntime],
        serial_pool,
        victim: Optional["_VictimRuntime"],
    ) -> None:
        """Drive one Δ period: CA duty, faults, agent pulls, session upkeep."""
        cfg = self.config
        count, revoke_victim, reason = workload
        outage = self._active_fault("ca-outage", period)
        serials = [SerialNumber(next(serial_pool)) for _ in range(count)]
        if revoke_victim and victim is not None:
            serials.append(victim.serial)

        prev_epoch = ca.key_epoch
        prev_root = ca.dictionary.signed_root if not cfg.sharded else None

        if outage is not None:
            if serials:
                self._backlog.append(
                    (bin_start, serials, reason or "queued in outage", revoke_victim)
                )
                self._event(period, "ca-outage", f"{len(serials)} revocation(s) queued")
            elif period == outage.at_period:
                self._event(period, "ca-outage", "CA publishes nothing this window")
        else:
            self._issue_revocations(
                period, bin_start, serials, reason, revoke_victim, ca, victim
            )

        if ca.key_epoch > prev_epoch:
            self._record_rotation(period, bin_start, prev_root, ca)
        if any(fault.kind == "replayed-head" for fault in cfg.faults):
            self._archive_head(ca, cdn)

        tamper = self._active_fault("tampered-batch", period)
        if tamper is not None and period == tamper.at_period:
            detail = tamper_latest_batch(ca, cdn, bin_start)
            self._event(
                period, "tampered-batch", detail or "no published batch to tamper with"
            )

        replay = self._active_fault("replayed-head", period)
        replay_active = (
            replay is not None and period == replay.at_period and self._head_archive
        )
        if replay is not None and period == replay.at_period:
            if self._head_archive:
                detail = replay_captured_head(
                    ca.name, cdn, self._head_archive[0], bin_start
                )
                self._event(period, "replayed-head", detail)
            else:
                self._event(period, "replayed-head", "no archived head to replay")

        forgery = self._active_fault("retired-key-forgery", period)
        if forgery is not None and period == forgery.at_period:
            detail = forge_head_with_retired_key(ca, cdn, bin_start)
            if detail is not None:
                self._forgery_attempts += 1
            self._event(
                period, "retired-key-forgery", detail or "no retired key available yet"
            )

        equivocation = self._active_fault("equivocating-ca", period)
        if equivocation is not None and period == equivocation.at_period:
            self._plant_equivocation(period, bin_start, equivocation, ca, cdn, runtimes)

        # Replay integrity probe: snapshot every replica before the pulls so
        # the zero-mutation property (a rejected replay leaves size and root
        # untouched) is checked directly, not inferred from error counts.
        snapshots: Dict[str, Tuple[int, bytes]] = {}
        if replay_active and not cfg.sharded:
            for runtime in runtimes:
                replica = runtime.agent.replica_for(ca.name)
                if replica is not None and replica.signed_root is not None:
                    snapshots[runtime.spec_name] = (
                        replica.size,
                        replica.signed_root.root,
                    )

        pull_time = bin_start + cfg.delta_seconds
        for runtime in runtimes:
            fault = self._restart_fault_for(runtime, period, runtimes)
            if fault is not None:
                if fault.crash and period == fault.at_period:
                    self._crash_agent(runtime, fault, ca, cdn, period)
                runtime.missed_pulls += 1
                self._event(period, "ra-restart", f"{runtime.spec_name} missed its pull")
                continue
            restored_replicas: Optional[int] = None
            if runtime.pending_restore:
                restored_replicas = runtime.client.restore(runtime.checkpoint_dir)
                runtime.pending_restore = False
                self._event(
                    period,
                    "ra-restore",
                    f"{runtime.spec_name} warm-started from its checkpoint "
                    f"({restored_replicas} replica(s))",
                )
            result = runtime.client.pull(now=pull_time)
            if runtime.crashed_mode is not None and runtime.recovery is None:
                runtime.recovery = {
                    "mode": runtime.crashed_mode,
                    "period": period,
                    "bytes_downloaded": result.bytes_downloaded,
                    "latency_seconds": result.latency_seconds,
                    "serials_applied": result.serials_applied,
                    "issuances_applied": result.issuances_applied,
                    "resyncs": result.resyncs,
                    "restored_replicas": restored_replicas or 0,
                    "completed_at": pull_time + result.latency_seconds,
                }
                self._event(
                    period,
                    "ra-recovered",
                    f"{runtime.spec_name} {runtime.crashed_mode} recovery: "
                    f"{result.bytes_downloaded} B, "
                    f"{result.serials_applied} serial(s) applied in "
                    f"{result.latency_seconds:.3f}s",
                )
            self._advance_provability(
                runtime, pull_time + result.latency_seconds, ca.name
            )
            if forgery is not None and period == forgery.at_period:
                self._forgery_errors += len(result.errors)
            for error in result.errors:
                self._event(period, "pull-error", error)

        if replay_active and not cfg.sharded:
            for runtime in runtimes:
                before = snapshots.get(runtime.spec_name)
                replica = runtime.agent.replica_for(ca.name)
                if before is None or replica is None or replica.signed_root is None:
                    continue
                self._replay_probes += 1
                if (replica.size, replica.signed_root.root) != before:
                    self._replay_mutations += 1

        if len(runtimes) >= 2 and not cfg.sharded:
            self._gossip_ring(period, runtimes)
        if cfg.key_rotation_periods and not cfg.sharded:
            self._probe_rotation(period, pull_time, ca, runtimes[0])

        if cfg.sharded:
            self._record_sharded_storage(period, pull_time, ca, runtimes[0])

        if victim is not None and victim.deployment is not None:
            self._session_upkeep(period, pull_time, victim)

    def _issue_revocations(
        self,
        period: int,
        now: float,
        serials: List[SerialNumber],
        reason: str,
        revoke_victim: bool,
        ca: RITMCertificationAuthority,
        victim: Optional["_VictimRuntime"],
    ) -> None:
        """Flush any outage backlog, then revoke this period's serials."""
        if self.config.sharded:
            self._issue_sharded(period, now, serials, reason, ca)
            return
        for intended_time, queued, queued_reason, queued_victim in self._backlog:
            issuance = ca.revoke(queued, now=now, reason=queued_reason)
            self._record_issuance(issuance, intended_time)
            if queued_victim and victim is not None:
                victim.revoked_at = now
                self._event(period, "victim-revoked", f"serial {victim.serial} revoked")
            self._event(
                period,
                "backlog-flush",
                f"{len(queued)} queued revocation(s) published "
                f"{now - intended_time:.0f}s late",
            )
        self._backlog = []
        if not serials:
            ca.refresh(now=now)
            return
        issuance = ca.revoke(serials, now=now, reason=reason or "unspecified")
        self._record_issuance(issuance, now)
        if revoke_victim and victim is not None:
            victim.revoked_at = now
            self._event(period, "victim-revoked", f"serial {victim.serial} revoked")
        if len(serials) > (1 if revoke_victim else 0):
            self._event(period, "revocation", f"{len(serials)} serial(s) revoked")

    def _record_issuance(self, issuance, event_time: float) -> None:
        """Track an issuance for provability accounting and replay phases."""
        self._batches.append(list(issuance.serials))
        self._numbered.extend(issuance.numbered_serials())
        self._revocations_issued += len(issuance.serials)
        if self._oracle is not None and not self.config.sharded:
            # Crash-recovery study: mirror every revocation into the
            # in-memory oracle the recovered replicas are checked against.
            self._oracle.insert(list(issuance.serials), int(event_time))
        self._pending.append(
            _PendingProvability(
                event_time=event_time,
                cumulative_size=issuance.first_number + len(issuance.serials) - 1,
            )
        )

    def _issue_sharded(
        self,
        period: int,
        now: float,
        serials: List[SerialNumber],
        reason: str,
        ca: RITMCertificationAuthority,
    ) -> None:
        """Sharded-mode issuance: assign expiries, route to shards, refresh.

        Every serial gets a deterministic certificate expiry 1..N periods
        after its revocation (``cert_lifetime_periods``), producing the
        expiry churn that makes shards fill and retire over a long run.  The
        same serials are fed to the unsharded oracle dictionary for the
        verdict/storage comparison.  The CA refreshes every period, which
        also drives shard retirement at the configured cadence.
        """
        if serials:
            pairs = [(serial, self._assign_expiry(serial, now)) for serial in serials]
            issuances = ca.revoke_with_expiry(pairs, now=now, reason=reason or "unspecified")
            for _, issuance in issuances:
                self._batches.append(list(issuance.serials))
            self._revocations_issued += len(serials)
            self._pending.append(
                _PendingProvability(
                    event_time=now, cumulative_size=self._revocations_issued
                )
            )
            self._oracle.insert(serials, int(now))
            self._event(period, "revocation", f"{len(serials)} serial(s) revoked")
        ca.refresh(now=now)

    def _assign_expiry(self, serial: SerialNumber, now: float) -> int:
        """Deterministic expiry churn: 1..cert_lifetime_periods periods out."""
        lifetime = self.config.cert_lifetime_periods
        offset = (self._expiry_cycle % lifetime) + 1
        self._expiry_cycle += 1
        expiry = int(now + offset * self.config.delta_seconds)
        self._expiries[serial.value] = expiry
        return expiry

    def _record_sharded_storage(
        self,
        period: int,
        pull_time: float,
        ca: RITMCertificationAuthority,
        runtime: _AgentRuntime,
    ) -> None:
        """Append one sample to the sharded-vs-baseline storage timeline."""
        replicas = runtime.agent.shard_replicas(ca.name)
        self._storage_timeline.append(
            {
                "period": period,
                "time": pull_time,
                "ca_storage_bytes": ca.storage_size_bytes(),
                "ca_shard_count": ca.shards.shard_count,
                "ra_storage_bytes": sum(
                    replica.storage_size_bytes() for replica in replicas.values()
                ),
                "ra_shard_count": len(replicas),
                "baseline_storage_bytes": self._oracle.storage_size_bytes(),
            }
        )

    def _advance_provability(
        self, runtime: _AgentRuntime, available_at: float, ca_name: str
    ) -> None:
        """Record dissemination lag for every batch the agent now covers.

        In sharded mode shard pruning shrinks replica sizes, so coverage is
        tracked by cumulative serials *applied* (which only grows) instead
        of the replica's current size.
        """
        if self.config.sharded:
            size = sum(
                pull.serials_applied for pull in runtime.client.pull_history
            )
        else:
            replica = runtime.agent.replica_for(ca_name)
            size = replica.size if replica is not None else 0
        while runtime.provability_cursor < len(self._pending):
            entry = self._pending[runtime.provability_cursor]
            if entry.cumulative_size > size:
                break
            lag = available_at - entry.event_time
            runtime.max_lag_seconds = max(runtime.max_lag_seconds, lag)
            runtime.provability_cursor += 1

    # -- faults --------------------------------------------------------------------

    def _active_fault(self, kind: str, period: int) -> Optional[FaultSpec]:
        """The configured fault of ``kind`` covering ``period``, if any."""
        for fault in self.config.faults:
            if fault.kind == kind and fault.covers(period):
                return fault
        return None

    def _restart_fault_for(
        self, runtime: _AgentRuntime, period: int, runtimes: List[_AgentRuntime]
    ) -> Optional[FaultSpec]:
        """The ``ra-restart`` fault keeping ``runtime`` down this period.

        Unlike :meth:`_active_fault` this considers *every* restart fault,
        so several agents can restart in the same window (the crash-recovery
        scenario runs a durable and a cold restart side by side).
        """
        for fault in self.config.faults:
            if fault.kind != "ra-restart" or not fault.covers(period):
                continue
            target = fault.agent or runtimes[-1].spec_name
            if runtime.spec_name == target:
                return fault
        return None

    def _crash_agent(
        self,
        runtime: _AgentRuntime,
        fault: FaultSpec,
        ca: RITMCertificationAuthority,
        cdn: CDNNetwork,
        period: int,
    ) -> None:
        """Kill and re-create an agent's process state for a crash restart.

        In durable mode the dissemination client checkpoints first —
        modelling an RA that persists its state once per applied epoch — so
        recovery can warm-start from disk.  Either way the old agent and
        client are discarded (their pull history is archived for the run's
        dissemination totals) and replaced with a fresh attach, exactly what
        a restarted process would do.
        """
        if fault.durable:
            runtime.checkpoint_dir = tempfile.mkdtemp(
                prefix=f"ritm-ckpt-{runtime.spec_name}-"
            )
            self._checkpoint_dirs.append(runtime.checkpoint_dir)
            runtime.client.checkpoint(runtime.checkpoint_dir)
        runtime.archived_pulls.extend(runtime.client.pull_history)
        runtime.agent.close()
        agent = RevocationAgent(runtime.spec_name, self._ritm_config)
        runtime.agent = agent
        runtime.client = attach_agent_to_cas(agent, [ca], cdn, runtime.location)
        runtime.pending_restore = fault.durable
        runtime.crashed_mode = "durable" if fault.durable else "cold"
        self._event(
            period,
            "ra-crash",
            f"{runtime.spec_name} crashed "
            f"({'durable checkpoint on disk' if fault.durable else 'memory lost'})",
        )

    def _archive_head(self, ca: RITMCertificationAuthority, cdn: CDNNetwork) -> None:
        """Keep the raw bytes of every head publication for the replay fault."""
        path = head_path(ca.name)
        if cdn.origin.exists(path):
            self._head_archive.append(cdn.origin.fetch(path).content)

    def _record_rotation(
        self,
        period: int,
        bin_start: float,
        prev_root: Optional[SignedRoot],
        ca: RITMCertificationAuthority,
    ) -> None:
        """Log a CA key rotation and remember the retired epoch's root.

        The pre-rotation signed root — the last statement the outgoing key
        ever signed — is what the overlap probes re-verify later: it must
        stay acceptable until the overlap window closes and not a second
        longer (:meth:`_probe_rotation`).
        """
        overlap = self._ritm_config.key_overlap_seconds
        self._rotations.append(
            {
                "period": period,
                "epoch": ca.key_epoch,
                "rotated_at": bin_start,
                "overlap_until": bin_start + overlap,
                "retired_root": prev_root,
                "probed_inside": False,
                "probed_after": False,
            }
        )
        self._event(
            period,
            "key-rotation",
            f"CA advanced to signing-key epoch {ca.key_epoch} "
            f"(outgoing key acceptable for {overlap:.0f}s more)",
        )

    def _plant_equivocation(
        self,
        period: int,
        bin_start: float,
        fault: FaultSpec,
        ca: RITMCertificationAuthority,
        cdn: CDNNetwork,
        runtimes: List[_AgentRuntime],
    ) -> None:
        """Stage the equivocating-CA fault against the targeted agent's region."""
        target_name = fault.agent or runtimes[-1].spec_name
        target = next(r for r in runtimes if r.spec_name == target_name)
        planted = equivocate_at_edges(
            ca,
            cdn,
            target.location.region,
            self._batches,
            bin_start,
            ttl_seconds=2 * self.config.delta_seconds,
        )
        if planted is None:
            self._event(
                period, "equivocating-ca", "nothing revoked yet — no forgery planted"
            )
            return
        self._hidden_serial = planted["hidden_serial"]
        self._equivocation = {
            "period": period,
            "targeted_agent": target_name,
            "hidden_serial": str(planted["hidden_serial"]),
            "conflicting_size": planted["conflicting_size"],
            "forged_root": planted["forged_root"][:16],
        }
        self._event(period, "equivocating-ca", planted["detail"])

    def _gossip_ring(self, period: int, runtimes: List[_AgentRuntime]) -> None:
        """One round of the always-on cross-RA gossip ring (§V detection).

        Every period each adjacent pair of agents (closed into a ring when
        the fleet has more than two) exchanges observed roots; any conflict
        — same CA, same size, different root — yields signed misbehavior
        reports within the same period it was planted.
        """
        pairs = list(zip(runtimes, runtimes[1:]))
        if len(runtimes) > 2:
            pairs.append((runtimes[-1], runtimes[0]))
        exchange = GossipExchange()
        new_reports = []
        for left, right in pairs:
            new_reports.extend(
                exchange.exchange(left.agent.consistency, right.agent.consistency)
            )
        if not new_reports:
            return
        if self._first_detection_period is None:
            self._first_detection_period = period
        self._misbehavior_reports.extend(new_reports)
        self._event(
            period,
            "misbehavior-detected",
            f"gossip round produced {len(new_reports)} misbehavior report(s)",
        )

    def _probe_rotation(
        self,
        period: int,
        pull_time: float,
        ca: RITMCertificationAuthority,
        runtime: _AgentRuntime,
    ) -> None:
        """Differentially re-verify retired epochs' roots, cached vs uncached.

        For each recorded rotation the retired root is verified twice — once
        through the agent's :class:`~repro.perf.root_cache.VerifiedRootCache`
        and once directly against the keyring's currently-acceptable keys —
        at most once inside the overlap window and once after it closes.
        The derived checks assert accept-inside / reject-after and that the
        cached verdict never diverges from the uncached one.
        """
        keyring = runtime.agent.keyring_for(ca.name)
        if keyring is None:
            return
        for record in self._rotations:
            root = record["retired_root"]
            if root is None:
                continue
            inside = pull_time <= record["overlap_until"]
            probed_key = "probed_inside" if inside else "probed_after"
            if record[probed_key]:
                continue
            record[probed_key] = True
            cached = runtime.agent.root_cache.verify(root, keyring)
            uncached = any(
                key.verify(root.payload(), root.signature)
                for key in keyring.acceptable_keys()
            )
            self._rotation_probes.append(
                {
                    "period": period,
                    "epoch": record["epoch"],
                    "inside_overlap": inside,
                    "cached_verdict": cached,
                    "uncached_verdict": uncached,
                }
            )

    # -- victim lifecycle ----------------------------------------------------------

    def _setup_victim(
        self,
        ca: RITMCertificationAuthority,
        ritm_config: RITMConfig,
        runtimes: List[_AgentRuntime],
        now: float,
    ) -> Optional["_VictimRuntime"]:
        """Issue the victim certificate and run the opening handshake."""
        cfg = self.config
        if not cfg.victim_host:
            return None
        server_keys = KeyPair.generate(f"{cfg.name}-server".encode())
        chain = ca.authority.issue_chain_for(cfg.victim_host, server_keys.public, now=int(now))
        trust_store = TrustStore()
        trust_store.add(ca.authority)
        victim = _VictimRuntime(
            chain=chain,
            trust_store=trust_store,
            # Under rotation the TLS clients must verify against the CA's
            # live keyring — the closing handshake may land epochs after the
            # genesis key was retired.
            ca_public_keys={
                ca.name: ca.keyring if cfg.key_rotation_periods else ca.public_key
            },
            serial=chain.leaf.serial,
        )
        clock = SimulatedClock(now + 1)
        deployment = build_close_to_client_deployment(
            server_chain=chain,
            trust_store=trust_store,
            ca_public_keys=victim.ca_public_keys,
            config=ritm_config,
            agent=runtimes[0].agent,
            clock=clock,
        )
        victim.initial_accepted = deployment.run_handshake()
        status = deployment.client.last_status
        victim.status_size_bytes = status.encoded_size() if status is not None else 0
        self._event(
            -1,
            "handshake",
            f"opening handshake accepted={victim.initial_accepted} "
            f"(status {victim.status_size_bytes} B)",
        )
        if cfg.long_lived_session:
            victim.deployment = deployment
            victim.clock = clock
        return victim

    def _session_upkeep(
        self, period: int, pull_time: float, victim: "_VictimRuntime"
    ) -> None:
        """Deliver server traffic on the long-lived session and enforce 2Δ."""
        if victim.detected_at is not None:
            return
        deployment, clock = victim.deployment, victim.clock
        clock.advance(pull_time - clock.now())
        deployment.deliver_from_server(b"keepalive")
        client = deployment.client
        if client.is_connection_usable:
            client.enforce_freshness(clock.now())
        if not client.is_connection_usable:
            victim.detected_at = clock.now()
            reason = client.rejection.value if client.rejection else "unknown"
            detail = f"session torn down: {reason}"
            if victim.revoked_at is not None:
                detail += f" ({victim.detected_at - victim.revoked_at:.0f}s after revocation)"
            self._event(period, "session-teardown", detail)

    def _final_handshake(
        self,
        ca: RITMCertificationAuthority,
        ritm_config: RITMConfig,
        runtime: _AgentRuntime,
        victim: "_VictimRuntime",
        now: float,
    ) -> None:
        """Run the closing handshake on a fresh connection."""
        deployment = build_close_to_client_deployment(
            server_chain=victim.chain,
            trust_store=victim.trust_store,
            ca_public_keys=victim.ca_public_keys,
            config=ritm_config,
            agent=runtime.agent,
            clock=SimulatedClock(now),
        )
        victim.final_accepted = deployment.run_handshake()
        victim.final_rejection = (
            deployment.client.rejection.value if deployment.client.rejection else ""
        )
        self._event(
            -2,
            "handshake",
            f"closing handshake accepted={victim.final_accepted}"
            + (f" ({victim.final_rejection})" if victim.final_rejection else ""),
        )

    # -- study phases --------------------------------------------------------------

    def _gossip_audit(
        self,
        ca: RITMCertificationAuthority,
        authority: CertificationAuthority,
        runtimes: List[_AgentRuntime],
        victim: Optional["_VictimRuntime"],
        now: float,
    ) -> Dict[str, object]:
        """Stage a CA equivocation against the last agent and gossip it out.

        The CA revokes the victim honestly for every RA except the targeted
        one, which instead receives a forged issuance (a decoy serial and a
        parallel signed root over the doctored content).  One gossip round
        between an honest RA and the targeted RA yields portable evidence.
        """
        cfg = self.config
        issuance = ca.revoke([victim.serial], now=now, reason="equivocation target")
        victim.revoked_at = now
        honest, targeted = runtimes[0], runtimes[-1]
        for runtime in runtimes[:-1]:
            runtime.client.pull(now=now + 1)

        decoy = SerialNumber(DECOY_SERIAL)
        shadow_tree = SortedMerkleTree()
        for number, serial in self._numbered:
            shadow_tree.insert(serial.to_bytes(), number.to_bytes(4, "big"))
        shadow_tree.insert(decoy.to_bytes(), issuance.first_number.to_bytes(4, "big"))
        chain_length = issuance.signed_root.chain_length
        shadow_chain = HashChain(length=chain_length)
        forged_root = SignedRoot(
            ca_name=ca.name,
            root=shadow_tree.root(),
            size=issuance.signed_root.size,
            anchor=shadow_chain.anchor,
            timestamp=issuance.signed_root.timestamp,
            chain_length=chain_length,
        ).sign(authority._keys.private)  # noqa: SLF001 - the CA signs its own forgery
        forged = replace(issuance, serials=(decoy,), signed_root=forged_root)
        targeted.agent.apply_issuance(forged)
        targeted_blind = not targeted.agent.replica_for(ca.name).contains(victim.serial)

        reports = GossipExchange().exchange(
            honest.agent.consistency, targeted.agent.consistency
        )
        evidence_valid = bool(reports) and reports[0].is_valid_evidence(ca.public_key)
        self._event(
            -3,
            "gossip",
            f"gossip round produced {len(reports)} misbehavior report(s)",
        )
        return {
            "targeted_agent": targeted.spec_name,
            "honest_agent": honest.spec_name,
            "targeted_believes_victim_revoked": not targeted_blind,
            "misbehavior_reports": len(reports),
            "evidence_valid_under_ca_key": evidence_valid,
            "conflicting_size": reports[0].first.size if reports else 0,
        }

    def _compare_engines(self) -> Dict[str, object]:
        """Replay the recorded revocation batches against each engine."""
        comparison: Dict[str, object] = {}
        roots = set()
        for engine in self.config.compare_engines:
            with create_store(engine) as store:
                number = 0
                started = _time.perf_counter()
                for batch in self._batches:
                    items = []
                    for serial in batch:
                        number += 1
                        items.append((serial.to_bytes(), number.to_bytes(4, "big")))
                    store.insert_batch(items)
                    store.root()
                elapsed = _time.perf_counter() - started
                root_hex = store.root().hex()
            roots.add(root_hex)
            comparison[engine] = {
                "seconds": round(elapsed, 6),
                "serials": number,
                "root": root_hex[:16],
            }
        comparison["roots_agree"] = len(roots) <= 1
        return comparison

    def _baseline_comparison(self, victim: "_VictimRuntime") -> Dict[str, object]:
        """Replay the victim's timeline against OCSP Stapling."""
        from repro.baselines import CheckContext, GroundTruth, OCSPStaplingScheme

        truth = GroundTruth(ca_name=self.config.ca_name)
        stapling = OCSPStaplingScheme(truth, response_lifetime=4 * 86_400.0)
        session_start = float(self.config.epoch)
        stapling.check(
            CheckContext("scenario-client", self.config.victim_host, victim.serial, now=session_start)
        )
        truth.revoke(victim.serial, now=float(victim.revoked_at))
        probe = stapling.check(
            CheckContext(
                "scenario-client",
                self.config.victim_host,
                victim.serial,
                now=float(victim.revoked_at) + 3600.0,
            )
        )
        return {
            "scheme": stapling.name,
            "response_lifetime_seconds": stapling.responder.response_lifetime,
            "reports_revoked_one_hour_after_revocation": probe.revoked,
            "worst_case_exposure_seconds": stapling.responder.response_lifetime,
            "ritm_bound_seconds": self.config.attack_window_seconds(),
        }

    # -- crash-recovery study phase --------------------------------------------------

    def _crash_recovery_extras(
        self, ca: RITMCertificationAuthority, runtimes: List[_AgentRuntime]
    ) -> Dict[str, object]:
        """The warm-vs-cold restart study results (docs/STORAGE.md).

        Per crashed agent: its recovery-pull metrics.  Differentially: every
        revoked serial's verdict from each crashed agent's recovered replica
        against the in-memory oracle, plus a handful of absent probes.  When
        both a durable and a cold crash ran, the head-to-head comparison.
        """
        agents: Dict[str, object] = {}
        mismatches = checked = 0
        probe_values = [serial.value for _, serial in self._numbered]
        absent_base = (max(probe_values, default=0) or DECOY_SERIAL) + 1
        for runtime in runtimes:
            if runtime.crashed_mode is None:
                continue
            agents[runtime.spec_name] = dict(runtime.recovery or {"mode": runtime.crashed_mode})
            replica = runtime.agent.replica_for(ca.name)
            if replica is None or replica.signed_root is None:
                mismatches += 1
                continue
            for value in probe_values:
                serial = SerialNumber(value)
                checked += 1
                if replica.prove(serial).is_revoked != self._oracle.contains(serial):
                    mismatches += 1
            for offset in range(5):
                probe = SerialNumber(absent_base + offset)
                checked += 1
                if replica.prove(probe).is_revoked or self._oracle.contains(probe):
                    mismatches += 1
        study: Dict[str, object] = {
            "agents": agents,
            "verdicts_checked": checked,
            "verdict_mismatches": mismatches,
        }
        durable = [a for a in agents.values() if a.get("mode") == "durable"]
        cold = [a for a in agents.values() if a.get("mode") == "cold"]
        if durable and cold and durable[0].get("completed_at") and cold[0].get("completed_at"):
            warm, coldstart = durable[0], cold[0]
            study["comparison"] = {
                "warm_bytes": warm["bytes_downloaded"],
                "cold_bytes": coldstart["bytes_downloaded"],
                "warm_recovery_seconds": warm["latency_seconds"],
                "cold_recovery_seconds": coldstart["latency_seconds"],
                "warm_back_in_bound_at": warm["completed_at"],
                "cold_back_in_bound_at": coldstart["completed_at"],
                "bytes_saved": coldstart["bytes_downloaded"] - warm["bytes_downloaded"],
            }
        return study

    def _crash_checks(self, study: Dict[str, object]) -> List[ScenarioCheck]:
        """Pass/fail assertions derived from the crash-recovery study."""
        checks = [
            ScenarioCheck(
                "crash-verdicts-match-inmemory-oracle",
                study["verdict_mismatches"] == 0 and study["verdicts_checked"] > 0,
                f"{study['verdicts_checked']} verdict(s), "
                f"{study['verdict_mismatches']} mismatch(es)",
            )
        ]
        durable_agents = [
            a for a in study["agents"].values() if a.get("mode") == "durable"
        ]
        if durable_agents:
            checks.append(
                ScenarioCheck(
                    "durable-restart-used-checkpoint",
                    all(a.get("restored_replicas", 0) >= 1 for a in durable_agents),
                    f"{len(durable_agents)} durable agent(s) warm-started",
                )
            )
        comparison = study.get("comparison")
        if comparison is not None:
            checks.append(
                ScenarioCheck(
                    "warm-restart-beats-cold-resync",
                    comparison["warm_bytes"] < comparison["cold_bytes"]
                    and comparison["warm_back_in_bound_at"]
                    < comparison["cold_back_in_bound_at"],
                    f"warm {comparison['warm_bytes']} B back in bound at "
                    f"{comparison['warm_back_in_bound_at']:.3f}s vs cold "
                    f"{comparison['cold_bytes']} B at "
                    f"{comparison['cold_back_in_bound_at']:.3f}s",
                )
            )
        return checks

    # -- adversarial study phases ----------------------------------------------------

    def _key_rotation_extras(
        self, ca: RITMCertificationAuthority, runtimes: List[_AgentRuntime]
    ) -> Dict[str, object]:
        """The key-rotation study results (docs/THREATS.md).

        The rotation timeline, how many announcement-chain entries the fleet
        learned, each agent's final keyring epoch, and the overlap probes
        from :meth:`_probe_rotation`.
        """
        learned = sum(
            sum(pull.key_rotations_applied for pull in r.pull_results())
            for r in runtimes
        )
        agent_epochs: Dict[str, int] = {}
        for runtime in runtimes:
            keyring = runtime.agent.keyring_for(ca.name)
            agent_epochs[runtime.spec_name] = keyring.key_epoch if keyring else 0
        return {
            "ca_key_epoch": ca.key_epoch,
            "rotations": [
                {
                    "period": record["period"],
                    "epoch": record["epoch"],
                    "rotated_at": record["rotated_at"],
                    "overlap_until": record["overlap_until"],
                }
                for record in self._rotations
            ],
            "announcements_learned": learned,
            "agent_key_epochs": agent_epochs,
            "probes": list(self._rotation_probes),
        }

    def _rotation_checks(self, study: Dict[str, object]) -> List[ScenarioCheck]:
        """Pass/fail assertions derived from the key-rotation study."""
        probes = study["probes"]
        inside = [p for p in probes if p["inside_overlap"]]
        after = [p for p in probes if not p["inside_overlap"]]
        epochs = study["agent_key_epochs"].values()
        return [
            ScenarioCheck(
                "key-rotation-learned",
                study["ca_key_epoch"] >= 1
                and study["announcements_learned"] >= 1
                and all(epoch == study["ca_key_epoch"] for epoch in epochs),
                f"CA at epoch {study['ca_key_epoch']}, "
                f"{study['announcements_learned']} announcement(s) learned, "
                f"agent epochs {sorted(epochs)}",
            ),
            ScenarioCheck(
                "retired-key-valid-inside-overlap",
                bool(inside)
                and all(p["cached_verdict"] and p["uncached_verdict"] for p in inside),
                f"{len(inside)} in-overlap probe(s) accepted",
            ),
            ScenarioCheck(
                "retired-key-rejected-after-overlap",
                bool(after)
                and all(
                    not p["cached_verdict"] and not p["uncached_verdict"] for p in after
                ),
                f"{len(after)} post-overlap probe(s) rejected",
            ),
            ScenarioCheck(
                "cached-matches-uncached-across-rotation",
                bool(probes)
                and all(p["cached_verdict"] == p["uncached_verdict"] for p in probes),
                f"{len(probes)} probe(s), cache and direct verification agree",
            ),
        ]

    def _equivocation_extras(
        self, ca: RITMCertificationAuthority, runtimes: List[_AgentRuntime]
    ) -> Dict[str, object]:
        """The equivocation study results: planted forgery, detection, evidence."""
        planted = dict(self._equivocation or {})
        target_name = planted.get("targeted_agent")
        target = next(
            (r for r in runtimes if r.spec_name == target_name), None
        )
        targeted_blind = False
        if target is not None and self._hidden_serial is not None:
            replica = target.agent.replica_for(ca.name)
            targeted_blind = replica is not None and not replica.contains(
                self._hidden_serial
            )
        reports = self._misbehavior_reports
        return {
            **planted,
            "detected_period": self._first_detection_period,
            "misbehavior_reports": len(reports),
            "evidence_valid_under_ca_keyring": bool(reports)
            and all(report.is_valid_evidence(ca.keyring) for report in reports),
            "reporter_signatures_valid": bool(reports)
            and all(report.verify_reporter() for report in reports),
            "targeted_blind": targeted_blind,
        }

    def _equivocation_checks(
        self, study: Dict[str, object], fault: FaultSpec
    ) -> List[ScenarioCheck]:
        """Pass/fail assertions derived from the equivocation study."""
        return [
            ScenarioCheck(
                "equivocation-detected-within-one-round",
                study["detected_period"] == fault.at_period,
                f"planted at period {fault.at_period}, gossip detected it at "
                f"period {study['detected_period']}",
            ),
            ScenarioCheck(
                "equivocation-evidence-valid",
                study["misbehavior_reports"] >= 1
                and bool(study["evidence_valid_under_ca_keyring"])
                and bool(study["reporter_signatures_valid"]),
                f"{study['misbehavior_reports']} signed report(s)",
            ),
            ScenarioCheck(
                "targeted-ra-blind-before-gossip",
                bool(study["targeted_blind"]),
                f"targeted agent {study.get('targeted_agent')} missing serial "
                f"{study.get('hidden_serial')}",
            ),
        ]

    # -- lifecycle -------------------------------------------------------------------

    def _cleanup(self, ca: RITMCertificationAuthority, runtimes: List[_AgentRuntime]) -> None:
        """Close every store and drop checkpoint scratch directories.

        The durable engine holds open WAL handles (and temp directories when
        no explicit path was configured); a scenario run must not leak them
        even when a study phase raises.
        """
        for runtime in runtimes:
            runtime.agent.close()
        ca.close()
        if self._oracle is not None:
            self._oracle.close()
        for directory in self._checkpoint_dirs:
            shutil.rmtree(directory, ignore_errors=True)

    # -- sharded study phase -------------------------------------------------------

    def _sharded_extras(
        self,
        ca: RITMCertificationAuthority,
        runtimes: List[_AgentRuntime],
        end_time: float,
    ) -> Dict[str, object]:
        """The §VIII study results: storage timeline, differential verdicts,
        read-path purity, and reclaimed storage."""
        agent = runtimes[0].agent
        oracle = self._oracle

        # Differential verdicts: every revoked serial whose certificate is
        # still live must get the same verdict from the sharded replica as
        # from the unsharded oracle; a few absent serials in live windows
        # must prove absent on both.
        live_checked = mismatches = absent_checked = 0
        live_expiries: List[int] = []
        for value, expiry in self._expiries.items():
            if expiry <= end_time:
                continue
            live_expiries.append(expiry)
            serial = SerialNumber(value)
            replica = agent.replica_for_certificate(ca.name, expiry)
            if replica is None:
                mismatches += 1
                continue
            live_checked += 1
            if replica.prove(serial).is_revoked != oracle.contains(serial):
                mismatches += 1
        unused_value = max(self._expiries, default=0) + 1
        for expiry in live_expiries[:5]:
            probe = SerialNumber(unused_value)
            unused_value += 1
            replica = agent.replica_for_certificate(ca.name, expiry)
            if replica is None:
                mismatches += 1
                continue
            absent_checked += 1
            if replica.prove(probe).is_revoked or oracle.contains(probe):
                mismatches += 1

        # Read-path purity: proving a serial in a window no shard covers
        # must answer "absent" without creating (and retaining) a shard.
        shards_before = ca.shards.shard_count
        storage_before = ca.storage_size_bytes()
        unknown_window_expiry = int(
            end_time + 2 * self.config.shard_width_periods * self.config.delta_seconds
        )
        probe_status = ca.prove_status(
            SerialNumber(unused_value), unknown_window_expiry, now=int(end_time)
        )
        read_path_pure = (
            ca.shards.shard_count == shards_before
            and ca.storage_size_bytes() == storage_before
            and not probe_status.is_revoked
        )

        baseline_series = [
            sample["baseline_storage_bytes"] for sample in self._storage_timeline
        ]
        sharded_series = [
            sample["ra_storage_bytes"] for sample in self._storage_timeline
        ]
        return {
            "timeline": self._storage_timeline,
            "live_serials_checked": live_checked,
            "absent_serials_checked": absent_checked,
            "verdict_mismatches": mismatches,
            "read_path_pure": read_path_pure,
            "ca_shards_retired": ca.shards.retired_count,
            "ca_reclaimed_bytes": ca.shards.reclaimed_storage_bytes,
            "ra_reclaimed_bytes": agent.reclaimed_storage_bytes,
            "ra_pruned_entries": agent.pruned_revocations,
            "baseline_final_bytes": baseline_series[-1] if baseline_series else 0,
            "sharded_final_bytes": sharded_series[-1] if sharded_series else 0,
            "sharded_peak_bytes": max(sharded_series, default=0),
            "baseline_monotonic": all(
                earlier <= later
                for earlier, later in zip(baseline_series, baseline_series[1:])
            ),
        }

    def _sharded_checks(self, study: Dict[str, object]) -> List[ScenarioCheck]:
        """Pass/fail assertions derived from the §VIII study results."""
        return [
            ScenarioCheck(
                "ra-storage-reclaimed",
                bool(study["ra_reclaimed_bytes"]) and study["ca_shards_retired"] > 0,
                f"{study['ra_reclaimed_bytes']} B freed across "
                f"{study['ca_shards_retired']} retired shard(s)",
            ),
            ScenarioCheck(
                "verdicts-match-unsharded-oracle",
                study["verdict_mismatches"] == 0 and study["live_serials_checked"] > 0,
                f"{study['live_serials_checked']} live + "
                f"{study['absent_serials_checked']} absent serials, "
                f"{study['verdict_mismatches']} mismatch(es)",
            ),
            ScenarioCheck(
                "read-path-pure-on-unknown-window",
                bool(study["read_path_pure"]),
                "prove() on an uncovered expiry window left shard_count "
                "and storage unchanged",
            ),
            ScenarioCheck(
                "sharded-storage-plateaus",
                bool(study["baseline_monotonic"])
                and study["sharded_final_bytes"] < study["baseline_final_bytes"],
                f"sharded RA ends at {study['sharded_final_bytes']} B vs "
                f"ever-growing baseline {study['baseline_final_bytes']} B",
            ),
        ]

    def _shard_replicas_converged(
        self, ca: RITMCertificationAuthority, runtime: _AgentRuntime
    ) -> bool:
        """Does the agent hold an equal-size replica of every live CA shard?

        Shards whose window expired by the agent's last pull are skipped:
        the RA prunes at pull time (bin start + Δ) while the CA retires at
        its next refresh (the following bin start), so a window boundary
        inside the final period legitimately leaves the CA one shard ahead.
        """
        replicas = runtime.agent.shard_replicas(ca.name)
        history = runtime.client.pull_history
        last_pull = history[-1].time if history else 0.0
        for key in ca.shards.shard_keys():
            if key.is_expired(last_pull):
                continue
            replica = replicas.get(key.index)
            shard = ca.shards.shard_at(key.index)
            if replica is None or shard is None or replica.size != shard.size:
                return False
        return True

    # -- report assembly -----------------------------------------------------------

    def _collect_metrics(
        self,
        ca: RITMCertificationAuthority,
        runtimes: List[_AgentRuntime],
        cdn: CDNNetwork,
    ) -> Dict[str, object]:
        """Aggregate dissemination, dictionary, hot-path, and attack-window
        metrics."""
        pulls = bytes_downloaded = freshness = issuances = serials = resyncs = errors = 0
        root_cache_hits = root_signatures_verified = 0
        stale_heads = replays = rotations_learned = 0
        latencies: List[float] = []
        per_agent: Dict[str, Dict[str, object]] = {}
        for runtime in runtimes:
            history = runtime.pull_results()
            pulls += len(history)
            bytes_downloaded += runtime.total_bytes_downloaded()
            latencies.extend(pull.latency_seconds for pull in history)
            freshness += sum(pull.freshness_applied for pull in history)
            issuances += sum(pull.issuances_applied for pull in history)
            serials += sum(pull.serials_applied for pull in history)
            resyncs += sum(pull.resyncs for pull in history)
            errors += sum(len(pull.errors) for pull in history)
            root_cache_hits += sum(pull.root_cache_hits for pull in history)
            root_signatures_verified += sum(
                pull.root_signatures_verified for pull in history
            )
            stale_heads += sum(pull.stale_heads_ignored for pull in history)
            replays += sum(pull.replays_rejected for pull in history)
            rotations_learned += sum(pull.key_rotations_applied for pull in history)
            if self.config.sharded:
                replicas = runtime.agent.shard_replicas(ca.name)
                per_agent[runtime.spec_name] = {
                    "size": sum(replica.size for replica in replicas.values()),
                    "storage_bytes": sum(
                        replica.storage_size_bytes() for replica in replicas.values()
                    ),
                    "shard_count": len(replicas),
                    "missed_pulls": runtime.missed_pulls,
                    "max_lag_seconds": round(runtime.max_lag_seconds, 3),
                }
            else:
                replica = runtime.agent.replica_for(ca.name)
                per_agent[runtime.spec_name] = {
                    "size": replica.size if replica else 0,
                    "storage_bytes": replica.storage_size_bytes() if replica else 0,
                    "missed_pulls": runtime.missed_pulls,
                    "max_lag_seconds": round(runtime.max_lag_seconds, 3),
                }
        return {
            "dissemination": {
                "pulls": pulls,
                "bytes_downloaded": bytes_downloaded,
                "average_pull_latency_seconds": (
                    sum(latencies) / len(latencies) if latencies else 0.0
                ),
                "freshness_applied": freshness,
                "issuances_applied": issuances,
                "serials_applied": serials,
                "resyncs": resyncs,
                "errors": errors,
                "root_cache_hits": root_cache_hits,
                "root_signatures_verified": root_signatures_verified,
                "stale_heads_ignored": stale_heads,
                "replays_rejected": replays,
                "key_rotations_applied": rotations_learned,
            },
            "hot_path": self._hot_path_metrics(runtimes, cdn),
            "dictionary": {
                "ca_size": ca.total_revocations(),
                "revocations_issued": self._revocations_issued,
                "issuance_batches": ca.issuance_count(),
            },
            **(
                {
                    "sharding": {
                        "ca_shard_count": ca.shards.shard_count,
                        "ca_shards_retired": ca.shards.retired_count,
                        "ca_reclaimed_bytes": ca.shards.reclaimed_storage_bytes,
                        "ra_shards_pruned": sum(
                            r.agent.stats.shard_replicas_pruned for r in runtimes
                        ),
                        "ra_pruned_entries": sum(
                            r.agent.pruned_revocations for r in runtimes
                        ),
                        "ra_reclaimed_bytes": sum(
                            r.agent.reclaimed_storage_bytes for r in runtimes
                        ),
                    }
                }
                if self.config.sharded
                else {}
            ),
            "attack_window": {
                "bound_seconds": self.config.attack_window_seconds(),
                "max_lag_seconds": round(
                    max((r.max_lag_seconds for r in runtimes), default=0.0), 3
                ),
                "per_agent": {
                    runtime.spec_name: round(runtime.max_lag_seconds, 3)
                    for runtime in runtimes
                },
            },
            "agents": per_agent,
        }

    @staticmethod
    def _hot_path_metrics(
        runtimes: List[_AgentRuntime], cdn: CDNNetwork
    ) -> Dict[str, object]:
        """Aggregate the verification-engine cache counters across the fleet.

        One section per cache layer (see docs/PERFORMANCE.md): the agents'
        Merkle proof caches, their verified-root caches, and the CDN edges'
        object caches — each in the uniform :class:`CacheStats` shape.
        """
        sections = {
            "proof_cache": [r.agent.proof_cache.stats for r in runtimes],
            "root_cache": [r.agent.root_cache.stats for r in runtimes],
            "edge_object_cache": [e.cache_stats for e in cdn.all_edges()],
        }
        metrics: Dict[str, object] = {}
        for name, stats_list in sections.items():
            total = CacheStats()
            for stats in stats_list:
                total.hits += stats.hits
                total.misses += stats.misses
                total.evictions += stats.evictions
                total.invalidations += stats.invalidations
            metrics[name] = total.as_dict()
        return metrics

    def _build_checks(
        self,
        ca: RITMCertificationAuthority,
        runtimes: List[_AgentRuntime],
        victim: Optional["_VictimRuntime"],
        extras: Dict[str, object],
    ) -> List[ScenarioCheck]:
        """The generic and fault/study-specific pass/fail assertions."""
        cfg = self.config
        checks: List[ScenarioCheck] = []
        pulls = sum(len(r.pull_results()) for r in runtimes)
        bytes_downloaded = sum(r.total_bytes_downloaded() for r in runtimes)
        checks.append(
            ScenarioCheck(
                "dissemination-active",
                pulls > 0 and bytes_downloaded > 0,
                f"{pulls} pulls, {bytes_downloaded} bytes",
            )
        )
        equivocation_targets = {
            fault.agent or runtimes[-1].spec_name
            for fault in cfg.faults
            if fault.kind == "equivocating-ca"
        }
        converged_agents = [
            r
            for r in runtimes
            if not (cfg.gossip_audit and r is runtimes[-1])
            and r.spec_name not in equivocation_targets
        ]
        if cfg.sharded:
            converged = all(
                self._shard_replicas_converged(ca, r) for r in converged_agents
            )
        else:
            converged = all(
                (r.agent.replica_for(ca.name).size if r.agent.replica_for(ca.name) else 0)
                == ca.dictionary.size
                for r in converged_agents
            )
        checks.append(
            ScenarioCheck(
                "replicas-converged",
                converged,
                f"CA size {ca.total_revocations()}",
            )
        )
        if cfg.sharded and "sharded_storage" in extras:
            checks.extend(self._sharded_checks(extras["sharded_storage"]))
        if victim is not None:
            checks.append(
                ScenarioCheck(
                    "initial-handshake-accepted",
                    victim.initial_accepted,
                    f"status {victim.status_size_bytes} B",
                )
            )
            if victim.revoked_at is not None:
                checks.append(
                    ScenarioCheck(
                        "revoked-handshake-rejected",
                        not victim.final_accepted
                        and victim.final_rejection
                        == RejectionReason.CERTIFICATE_REVOKED.value,
                        victim.final_rejection,
                    )
                )
        if cfg.long_lived_session and victim is not None:
            bound = cfg.attack_window_seconds()
            detected = victim.detected_at is not None and victim.revoked_at is not None
            lag = (victim.detected_at - victim.revoked_at) if detected else float("inf")
            checks.append(
                ScenarioCheck(
                    "mid-session-detection-within-bound",
                    detected and lag <= bound,
                    f"lag {lag:.0f}s vs bound {bound}s" if detected else "not detected",
                )
            )
        if any(fault.kind == "tampered-batch" for fault in cfg.faults):
            resyncs = sum(
                sum(pull.resyncs for pull in r.pull_results()) for r in runtimes
            )
            checks.append(
                ScenarioCheck(
                    "tamper-detected-and-recovered",
                    resyncs >= 1 and converged,
                    f"{resyncs} resync(s)",
                )
            )
        if any(fault.kind == "replayed-head" for fault in cfg.faults):
            replays = sum(
                sum(pull.replays_rejected for pull in r.pull_results())
                for r in runtimes
            )
            checks.append(
                ScenarioCheck(
                    "replayed-head-rejected",
                    replays >= 1,
                    f"{replays} replayed publication(s) rejected",
                )
            )
            checks.append(
                ScenarioCheck(
                    "replica-unmutated-by-replay",
                    self._replay_probes > 0 and self._replay_mutations == 0,
                    f"{self._replay_probes} replica snapshot(s) across the replay "
                    f"window, {self._replay_mutations} mutated",
                )
            )
        if any(fault.kind == "retired-key-forgery" for fault in cfg.faults):
            checks.append(
                ScenarioCheck(
                    "retired-key-forgery-rejected",
                    self._forgery_attempts >= 1
                    and self._forgery_errors >= 1
                    and converged,
                    f"{self._forgery_attempts} forged head(s) published, "
                    f"{self._forgery_errors} pull error(s), replicas recovered",
                )
            )
        if "key_rotation" in extras:
            checks.extend(self._rotation_checks(extras["key_rotation"]))
        if "equivocation" in extras:
            fault = next(f for f in cfg.faults if f.kind == "equivocating-ca")
            checks.extend(self._equivocation_checks(extras["equivocation"], fault))
        restart_faults = [f for f in cfg.faults if f.kind == "ra-restart"]
        if restart_faults:
            targets = sorted(
                {f.agent or runtimes[-1].spec_name for f in restart_faults}
            )
            degraded = [r for r in runtimes if r.spec_name in targets]
            healthy = [r for r in runtimes if r.spec_name not in targets]
            bound = cfg.attack_window_seconds()
            checks.append(
                ScenarioCheck(
                    "missed-pulls-extend-attack-window",
                    all(r.max_lag_seconds > bound for r in degraded),
                    ", ".join(
                        f"{r.spec_name} worst lag {r.max_lag_seconds:.0f}s"
                        for r in degraded
                    )
                    + f" vs bound {bound}s",
                )
            )
            if healthy:
                worst_healthy = max(r.max_lag_seconds for r in healthy)
                checks.append(
                    ScenarioCheck(
                        "healthy-agents-within-bound",
                        worst_healthy <= bound,
                        f"worst healthy lag {worst_healthy:.1f}s",
                    )
                )
        if "crash_recovery" in extras:
            checks.extend(self._crash_checks(extras["crash_recovery"]))
        if cfg.gossip_audit and "gossip_audit" in extras:
            audit = extras["gossip_audit"]
            checks.append(
                ScenarioCheck(
                    "equivocation-evidence-valid",
                    bool(audit["evidence_valid_under_ca_key"]),
                    f"{audit['misbehavior_reports']} report(s)",
                )
            )
            checks.append(
                ScenarioCheck(
                    "targeted-ra-blind-before-gossip",
                    not audit["targeted_believes_victim_revoked"],
                    f"targeted agent {audit['targeted_agent']}",
                )
            )
        if cfg.compare_engines and "engine_comparison" in extras:
            checks.append(
                ScenarioCheck(
                    "engines-agree-on-root",
                    bool(extras["engine_comparison"]["roots_agree"]),
                    ", ".join(cfg.compare_engines),
                )
            )
        return checks

    def _config_dict(self, duration: int) -> Dict[str, object]:
        """The config section of the report."""
        cfg = self.config
        return {
            "delta_seconds": cfg.delta_seconds,
            "duration_periods": duration,
            "store_engine": cfg.store_engine,
            "agents": [f"{a.name}@{a.region}" for a in cfg.agents],
            "faults": [
                f"{f.kind}@{f.at_period}+{f.duration_periods}" for f in cfg.faults
            ],
            "workload": cfg.workload.kind,
            "victim_host": cfg.victim_host,
            "attack_window_bound_seconds": cfg.attack_window_seconds(),
            "sharded": cfg.sharded,
            **(
                {
                    "shard_width_periods": cfg.shard_width_periods,
                    "cert_lifetime_periods": cfg.cert_lifetime_periods,
                    "prune_every_periods": cfg.prune_every_periods,
                }
                if cfg.sharded
                else {}
            ),
            **(
                {
                    "key_rotation_periods": cfg.key_rotation_periods,
                    "key_overlap_periods": cfg.key_overlap_periods,
                }
                if cfg.key_rotation_periods
                else {}
            ),
            "tags": list(cfg.tags),
        }

    def _event(self, period: int, kind: str, detail: str) -> None:
        """Append one timeline entry (period -1/-2/-3 = setup/closing/audit)."""
        self._events.append({"period": period, "kind": kind, "detail": detail})


@dataclass
class _VictimRuntime:
    """State for the scenario's victim certificate and its connections."""

    chain: object
    trust_store: TrustStore
    ca_public_keys: Dict[str, object]
    serial: SerialNumber
    initial_accepted: bool = False
    final_accepted: bool = False
    final_rejection: str = ""
    status_size_bytes: int = 0
    revoked_at: Optional[float] = None
    detected_at: Optional[float] = None
    deployment: Optional[object] = None
    clock: Optional[SimulatedClock] = None

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready summary for the report's extras."""
        return {
            "serial": str(self.serial),
            "initial_handshake_accepted": self.initial_accepted,
            "final_handshake_accepted": self.final_accepted,
            "final_rejection": self.final_rejection,
            "status_size_bytes": self.status_size_bytes,
            "revoked_at": self.revoked_at,
            "detected_at": self.detected_at,
            "detection_lag_seconds": (
                self.detected_at - self.revoked_at
                if self.detected_at is not None and self.revoked_at is not None
                else None
            ),
        }


def run_scenario(config: ScenarioConfig, smoke: bool = False) -> ScenarioReport:
    """Run ``config`` (optionally its smoke variant) and return the report."""
    if smoke:
        config = config.smoke()
    return ScenarioRunner(config).run()
