"""TLS session caching and resumption (session IDs and session tickets).

RITM explicitly supports both resumption mechanisms (§III): abbreviated
handshakes skip the Certificate message, so the RA must remember which CA and
serial a resumed session refers to (it does this via the DPI connection state
keyed by the session).  This module provides the server-side session cache
and RFC 5077-style tickets the connection state machines use.
"""

from __future__ import annotations

import hmac
import hashlib
import os
import struct
from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import TLSError

SESSION_ID_SIZE = 32
DEFAULT_SESSION_LIFETIME = 24 * 3600


@dataclass(frozen=True)
class SessionState:
    """What both endpoints remember about an established session."""

    session_id: bytes
    server_name: str
    cipher_suite: int
    established_at: int
    ca_name: str = ""
    serial_value: int = 0


class SessionCache:
    """Server-side session-ID cache (stateful resumption)."""

    def __init__(self, lifetime_seconds: int = DEFAULT_SESSION_LIFETIME) -> None:
        self._lifetime = lifetime_seconds
        self._sessions: Dict[bytes, SessionState] = {}

    def new_session_id(self) -> bytes:
        return os.urandom(SESSION_ID_SIZE)

    def store(self, state: SessionState) -> None:
        self._sessions[state.session_id] = state

    def lookup(self, session_id: bytes, now: int) -> Optional[SessionState]:
        state = self._sessions.get(session_id)
        if state is None:
            return None
        if now - state.established_at > self._lifetime:
            del self._sessions[session_id]
            return None
        return state

    def __len__(self) -> int:
        return len(self._sessions)


class TicketIssuer:
    """Server-side session-ticket minting and validation (stateless resumption).

    Tickets are authenticated with an HMAC under a server-local key; the
    content is not encrypted because nothing in this model is secret, but the
    MAC prevents forgery, which is what the resumption logic relies on.
    """

    def __init__(self, key: Optional[bytes] = None, lifetime_seconds: int = DEFAULT_SESSION_LIFETIME) -> None:
        self._key = key if key is not None else os.urandom(32)
        self.lifetime_seconds = lifetime_seconds

    def issue(self, state: SessionState) -> bytes:
        body = self._encode_state(state)
        mac = hmac.new(self._key, body, hashlib.sha256).digest()
        return body + mac

    def validate(self, ticket: bytes, now: int) -> Optional[SessionState]:
        if len(ticket) < 32:
            return None
        body, mac = ticket[:-32], ticket[-32:]
        expected = hmac.new(self._key, body, hashlib.sha256).digest()
        if not hmac.compare_digest(mac, expected):
            return None
        try:
            state = self._decode_state(body)
        except TLSError:
            return None
        if now - state.established_at > self.lifetime_seconds:
            return None
        return state

    @staticmethod
    def _encode_state(state: SessionState) -> bytes:
        name = state.server_name.encode("utf-8")
        ca = state.ca_name.encode("utf-8")
        return b"".join(
            [
                struct.pack(">B", len(state.session_id)),
                state.session_id,
                struct.pack(">H", len(name)),
                name,
                struct.pack(">H", len(ca)),
                ca,
                struct.pack(">HQQ", state.cipher_suite, state.established_at, state.serial_value),
            ]
        )

    @staticmethod
    def _decode_state(body: bytes) -> SessionState:
        try:
            offset = 0
            sid_len = body[offset]
            offset += 1
            session_id = body[offset : offset + sid_len]
            offset += sid_len
            (name_len,) = struct.unpack_from(">H", body, offset)
            offset += 2
            server_name = body[offset : offset + name_len].decode("utf-8")
            offset += name_len
            (ca_len,) = struct.unpack_from(">H", body, offset)
            offset += 2
            ca_name = body[offset : offset + ca_len].decode("utf-8")
            offset += ca_len
            cipher_suite, established_at, serial_value = struct.unpack_from(">HQQ", body, offset)
        except (IndexError, struct.error) as exc:
            raise TLSError(f"malformed session ticket: {exc}") from exc
        return SessionState(
            session_id=session_id,
            server_name=server_name,
            cipher_suite=cipher_suite,
            established_at=established_at,
            ca_name=ca_name,
            serial_value=serial_value,
        )
