"""TLS substrate: records, handshake messages, extensions, sessions, endpoints."""

from repro.tls.connection import (
    ClientConnectionConfig,
    HandshakeStage,
    ServerConnectionConfig,
    TLSClientConnection,
    TLSServerConnection,
)
from repro.tls.extensions import (
    Extension,
    RITM_SERVER_CONFIRM_TYPE,
    RITM_SUPPORT_TYPE,
    has_ritm_server_confirmation,
    has_ritm_support,
    ritm_server_confirm_extension,
    ritm_support_extension,
    server_name_extension,
)
from repro.tls.messages import (
    CertificateMessage,
    ClientHello,
    Finished,
    HandshakeType,
    NewSessionTicket,
    ServerHello,
    ServerHelloDone,
    parse_handshake_messages,
)
from repro.tls.records import (
    ContentType,
    TLSRecord,
    looks_like_tls,
    parse_record,
    parse_records,
    serialize_records,
)
from repro.tls.session import SessionCache, SessionState, TicketIssuer

__all__ = [
    "ContentType",
    "TLSRecord",
    "parse_record",
    "parse_records",
    "serialize_records",
    "looks_like_tls",
    "Extension",
    "RITM_SUPPORT_TYPE",
    "RITM_SERVER_CONFIRM_TYPE",
    "ritm_support_extension",
    "ritm_server_confirm_extension",
    "server_name_extension",
    "has_ritm_support",
    "has_ritm_server_confirmation",
    "ClientHello",
    "ServerHello",
    "CertificateMessage",
    "ServerHelloDone",
    "Finished",
    "NewSessionTicket",
    "HandshakeType",
    "parse_handshake_messages",
    "SessionCache",
    "SessionState",
    "TicketIssuer",
    "TLSClientConnection",
    "TLSServerConnection",
    "ClientConnectionConfig",
    "ServerConnectionConfig",
    "HandshakeStage",
]
