"""TLS record layer.

RITM's RA performs deep packet inspection at record granularity: it must
recognise handshake records, read the plaintext negotiation messages inside
them, and append revocation-status payloads to records travelling from the
server to the client.  This module models TLS records with the standard
5-byte header (content type, protocol version, length) and provides helpers
to parse a byte stream into records and back.

The paper's §VIII discusses how a status can be attached; this reproduction
follows option 1: a dedicated content type (``RITM_STATUS``) whose records
are consumed by RITM-aware clients and ignored (stripped) by the RA for
unsupported ones.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from enum import IntEnum
from typing import Iterable, List, Tuple

from repro.errors import TLSError

#: TLS 1.2 on the wire.
PROTOCOL_VERSION = (3, 3)
RECORD_HEADER_SIZE = 5
#: Maximum record payload (2^14 bytes, RFC 5246 §6.2.1).
MAX_RECORD_PAYLOAD = 2**14


class ContentType(IntEnum):
    """TLS record content types, plus RITM's dedicated status type (§VIII)."""

    CHANGE_CIPHER_SPEC = 20
    ALERT = 21
    HANDSHAKE = 22
    APPLICATION_DATA = 23
    #: Non-standard content type used to piggyback RITM revocation statuses.
    RITM_STATUS = 100


@dataclass(frozen=True)
class TLSRecord:
    """One TLS record: a content type and an opaque payload."""

    content_type: ContentType
    payload: bytes
    version: Tuple[int, int] = PROTOCOL_VERSION

    def __post_init__(self) -> None:
        if len(self.payload) > MAX_RECORD_PAYLOAD:
            raise TLSError(
                f"record payload of {len(self.payload)} bytes exceeds the "
                f"{MAX_RECORD_PAYLOAD}-byte TLS maximum"
            )

    def to_bytes(self) -> bytes:
        return (
            struct.pack(
                ">BBBH",
                int(self.content_type),
                self.version[0],
                self.version[1],
                len(self.payload),
            )
            + self.payload
        )

    @property
    def wire_size(self) -> int:
        return RECORD_HEADER_SIZE + len(self.payload)

    def is_handshake(self) -> bool:
        return self.content_type == ContentType.HANDSHAKE

    def is_application_data(self) -> bool:
        return self.content_type == ContentType.APPLICATION_DATA

    def is_ritm_status(self) -> bool:
        return self.content_type == ContentType.RITM_STATUS


def parse_record(data: bytes, offset: int = 0) -> Tuple[TLSRecord, int]:
    """Parse one record starting at ``offset``; returns (record, next offset)."""
    if offset + RECORD_HEADER_SIZE > len(data):
        raise TLSError("truncated TLS record header")
    content_type, major, minor, length = struct.unpack_from(">BBBH", data, offset)
    offset += RECORD_HEADER_SIZE
    if offset + length > len(data):
        raise TLSError("truncated TLS record payload")
    try:
        ctype = ContentType(content_type)
    except ValueError as exc:
        raise TLSError(f"unknown TLS content type {content_type}") from exc
    record = TLSRecord(
        content_type=ctype,
        payload=data[offset : offset + length],
        version=(major, minor),
    )
    return record, offset + length


def parse_records(data: bytes) -> List[TLSRecord]:
    """Parse a byte stream into consecutive records."""
    records: List[TLSRecord] = []
    offset = 0
    while offset < len(data):
        record, offset = parse_record(data, offset)
        records.append(record)
    return records


def serialize_records(records: Iterable[TLSRecord]) -> bytes:
    """Concatenate records back into a stream."""
    return b"".join(record.to_bytes() for record in records)


def looks_like_tls(data: bytes) -> bool:
    """Cheap DPI pre-filter: does this payload start like a TLS record?

    Used by the RA's fast path to discard non-TLS traffic without a full
    parse (the paper's "TLS detection" row of Table III).
    """
    if len(data) < RECORD_HEADER_SIZE:
        return False
    content_type, major, minor, length = struct.unpack_from(">BBBH", data, 0)
    if content_type not in (20, 21, 22, 23, 100):
        return False
    if major != 3 or minor > 4:
        return False
    return length <= MAX_RECORD_PAYLOAD
