"""TLS handshake messages.

Only the parts of the handshake RITM relies on are modelled in detail: the
plaintext negotiation messages (ClientHello, ServerHello, Certificate,
ServerHelloDone, Finished, NewSessionTicket).  Key exchange and the actual
record encryption are outside RITM's scope ("we assume TLS and the
cryptographic primitives that we use are secure", §II) and are represented by
opaque payloads.

Every message encodes to the standard 4-byte handshake header (type +
24-bit length) followed by a message-specific body, so the DPI engine parses
exactly what it would parse on a real wire.
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass, field
from enum import IntEnum
from typing import List, Optional, Tuple

from repro.errors import TLSError
from repro.pki.certificate import CertificateChain
from repro.tls.extensions import Extension, decode_extensions, encode_extensions

RANDOM_SIZE = 32
#: A plausible default cipher-suite list (only carried for realistic sizes).
DEFAULT_CIPHER_SUITES = (0xC02F, 0xC030, 0x009E, 0x009F, 0x00FF)


class HandshakeType(IntEnum):
    CLIENT_HELLO = 1
    SERVER_HELLO = 2
    NEW_SESSION_TICKET = 4
    CERTIFICATE = 11
    SERVER_HELLO_DONE = 14
    FINISHED = 20


def _pack_handshake(handshake_type: HandshakeType, body: bytes) -> bytes:
    return struct.pack(">B", int(handshake_type)) + len(body).to_bytes(3, "big") + body


def _unpack_handshake(data: bytes, offset: int) -> Tuple[HandshakeType, bytes, int]:
    if offset + 4 > len(data):
        raise TLSError("truncated handshake header")
    msg_type = data[offset]
    length = int.from_bytes(data[offset + 1 : offset + 4], "big")
    offset += 4
    if offset + length > len(data):
        raise TLSError("truncated handshake body")
    try:
        handshake_type = HandshakeType(msg_type)
    except ValueError as exc:
        raise TLSError(f"unknown handshake type {msg_type}") from exc
    return handshake_type, data[offset : offset + length], offset + length


@dataclass(frozen=True)
class ClientHello:
    """The plaintext ClientHello, optionally carrying the RITM extension."""

    random: bytes = field(default_factory=lambda: os.urandom(RANDOM_SIZE))
    session_id: bytes = b""
    cipher_suites: Tuple[int, ...] = DEFAULT_CIPHER_SUITES
    extensions: Tuple[Extension, ...] = ()

    def to_bytes(self) -> bytes:
        body = b"\x03\x03" + self.random
        body += struct.pack(">B", len(self.session_id)) + self.session_id
        body += struct.pack(">H", 2 * len(self.cipher_suites))
        body += b"".join(struct.pack(">H", suite) for suite in self.cipher_suites)
        body += b"\x01\x00"  # compression methods: null only
        body += encode_extensions(list(self.extensions))
        return _pack_handshake(HandshakeType.CLIENT_HELLO, body)

    @classmethod
    def from_body(cls, body: bytes) -> "ClientHello":
        if len(body) < 2 + RANDOM_SIZE + 1:
            raise TLSError("ClientHello body too short")
        offset = 2
        random = body[offset : offset + RANDOM_SIZE]
        offset += RANDOM_SIZE
        sid_len = body[offset]
        offset += 1
        session_id = body[offset : offset + sid_len]
        offset += sid_len
        (suites_len,) = struct.unpack_from(">H", body, offset)
        offset += 2
        suites = tuple(
            struct.unpack_from(">H", body, offset + i)[0] for i in range(0, suites_len, 2)
        )
        offset += suites_len
        comp_len = body[offset]
        offset += 1 + comp_len
        extensions, offset = decode_extensions(body, offset)
        return cls(
            random=random,
            session_id=session_id,
            cipher_suites=suites,
            extensions=tuple(extensions),
        )


@dataclass(frozen=True)
class ServerHello:
    """The plaintext ServerHello."""

    random: bytes = field(default_factory=lambda: os.urandom(RANDOM_SIZE))
    session_id: bytes = b""
    cipher_suite: int = DEFAULT_CIPHER_SUITES[0]
    extensions: Tuple[Extension, ...] = ()

    def to_bytes(self) -> bytes:
        body = b"\x03\x03" + self.random
        body += struct.pack(">B", len(self.session_id)) + self.session_id
        body += struct.pack(">HB", self.cipher_suite, 0)
        body += encode_extensions(list(self.extensions))
        return _pack_handshake(HandshakeType.SERVER_HELLO, body)

    @classmethod
    def from_body(cls, body: bytes) -> "ServerHello":
        if len(body) < 2 + RANDOM_SIZE + 1:
            raise TLSError("ServerHello body too short")
        offset = 2
        random = body[offset : offset + RANDOM_SIZE]
        offset += RANDOM_SIZE
        sid_len = body[offset]
        offset += 1
        session_id = body[offset : offset + sid_len]
        offset += sid_len
        cipher_suite, _compression = struct.unpack_from(">HB", body, offset)
        offset += 3
        extensions, offset = decode_extensions(body, offset)
        return cls(
            random=random,
            session_id=session_id,
            cipher_suite=cipher_suite,
            extensions=tuple(extensions),
        )


@dataclass(frozen=True)
class CertificateMessage:
    """The Certificate handshake message carrying the server's chain."""

    chain: CertificateChain

    def to_bytes(self) -> bytes:
        return _pack_handshake(HandshakeType.CERTIFICATE, self.chain.to_bytes())

    @classmethod
    def from_body(cls, body: bytes) -> "CertificateMessage":
        return cls(chain=CertificateChain.from_bytes(body))


@dataclass(frozen=True)
class ServerHelloDone:
    def to_bytes(self) -> bytes:
        return _pack_handshake(HandshakeType.SERVER_HELLO_DONE, b"")


@dataclass(frozen=True)
class Finished:
    """The Finished message; verify data is opaque in this model."""

    verify_data: bytes = field(default_factory=lambda: os.urandom(12))

    def to_bytes(self) -> bytes:
        return _pack_handshake(HandshakeType.FINISHED, self.verify_data)

    @classmethod
    def from_body(cls, body: bytes) -> "Finished":
        return cls(verify_data=body)


@dataclass(frozen=True)
class NewSessionTicket:
    """RFC 5077 session ticket issued by the server for stateless resumption."""

    lifetime_seconds: int
    ticket: bytes

    def to_bytes(self) -> bytes:
        body = struct.pack(">IH", self.lifetime_seconds, len(self.ticket)) + self.ticket
        return _pack_handshake(HandshakeType.NEW_SESSION_TICKET, body)

    @classmethod
    def from_body(cls, body: bytes) -> "NewSessionTicket":
        if len(body) < 6:
            raise TLSError("NewSessionTicket body too short")
        lifetime, length = struct.unpack_from(">IH", body, 0)
        return cls(lifetime_seconds=lifetime, ticket=body[6 : 6 + length])


HandshakeMessage = object  # documentation alias; concrete classes above


def parse_handshake_messages(payload: bytes) -> List[Tuple[HandshakeType, object]]:
    """Parse every handshake message in a handshake-record payload.

    Returns ``(type, message)`` pairs; messages of types this model does not
    need to inspect are returned as raw bytes.
    """
    messages: List[Tuple[HandshakeType, object]] = []
    offset = 0
    while offset < len(payload):
        handshake_type, body, offset = _unpack_handshake(payload, offset)
        if handshake_type == HandshakeType.CLIENT_HELLO:
            messages.append((handshake_type, ClientHello.from_body(body)))
        elif handshake_type == HandshakeType.SERVER_HELLO:
            messages.append((handshake_type, ServerHello.from_body(body)))
        elif handshake_type == HandshakeType.CERTIFICATE:
            messages.append((handshake_type, CertificateMessage.from_body(body)))
        elif handshake_type == HandshakeType.FINISHED:
            messages.append((handshake_type, Finished.from_body(body)))
        elif handshake_type == HandshakeType.NEW_SESSION_TICKET:
            messages.append((handshake_type, NewSessionTicket.from_body(body)))
        else:
            messages.append((handshake_type, body))
    return messages
