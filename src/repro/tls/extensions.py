"""TLS hello extensions, including RITM's client and server extensions.

The RITM client signals support by including a dedicated extension in its
ClientHello (§III step 1); in the close-to-server deployment the TLS
terminator confirms support in the ServerHello (§IV), which — being covered
by the TLS handshake transcript — defeats downgrade attacks.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import TLSError

#: IANA-style extension type numbers.  SNI and the session-ticket extension
#: use their real values; RITM's are from the private-use range.
SERVER_NAME_TYPE = 0
SESSION_TICKET_TYPE = 35
RITM_SUPPORT_TYPE = 0xFF01
RITM_SERVER_CONFIRM_TYPE = 0xFF02


@dataclass(frozen=True)
class Extension:
    """A TLS extension: 2-byte type, 2-byte length, opaque data."""

    extension_type: int
    data: bytes = b""

    def to_bytes(self) -> bytes:
        return struct.pack(">HH", self.extension_type, len(self.data)) + self.data

    @property
    def wire_size(self) -> int:
        return 4 + len(self.data)


def encode_extensions(extensions: List[Extension]) -> bytes:
    body = b"".join(extension.to_bytes() for extension in extensions)
    return struct.pack(">H", len(body)) + body


def decode_extensions(data: bytes, offset: int) -> Tuple[List[Extension], int]:
    if offset + 2 > len(data):
        raise TLSError("truncated extensions block")
    (total,) = struct.unpack_from(">H", data, offset)
    offset += 2
    end = offset + total
    if end > len(data):
        raise TLSError("extensions block longer than the message")
    extensions: List[Extension] = []
    while offset < end:
        if offset + 4 > end:
            raise TLSError("truncated extension header")
        ext_type, length = struct.unpack_from(">HH", data, offset)
        offset += 4
        if offset + length > end:
            raise TLSError("truncated extension body")
        extensions.append(Extension(ext_type, data[offset : offset + length]))
        offset += length
    return extensions, offset


def find_extension(extensions: List[Extension], extension_type: int) -> Optional[Extension]:
    for extension in extensions:
        if extension.extension_type == extension_type:
            return extension
    return None


# -- RITM-specific helpers ---------------------------------------------------


def ritm_support_extension(version: int = 1) -> Extension:
    """The ClientHello extension announcing "I'm deploying RITM" (Fig. 3)."""
    return Extension(RITM_SUPPORT_TYPE, struct.pack(">B", version))


def ritm_server_confirm_extension() -> Extension:
    """The ServerHello extension a TLS terminator adds in the close-to-server model."""
    return Extension(RITM_SERVER_CONFIRM_TYPE, b"\x01")


def server_name_extension(hostname: str) -> Extension:
    return Extension(SERVER_NAME_TYPE, hostname.encode("utf-8"))


def session_ticket_extension(ticket: bytes = b"") -> Extension:
    return Extension(SESSION_TICKET_TYPE, ticket)


def has_ritm_support(extensions: List[Extension]) -> bool:
    return find_extension(extensions, RITM_SUPPORT_TYPE) is not None


def has_ritm_server_confirmation(extensions: List[Extension]) -> bool:
    return find_extension(extensions, RITM_SERVER_CONFIRM_TYPE) is not None
