"""Client- and server-side TLS connection state machines.

These endpoints drive the plaintext negotiation that RITM's DPI engine
observes.  Key exchange and record protection are not modelled (the paper
assumes TLS itself is secure); application-data payloads are opaque bytes.

A *full* handshake runs ClientHello → ServerHello + Certificate +
ServerHelloDone → client Finished → server Finished (+ NewSessionTicket).
An *abbreviated* handshake (session-ID or ticket resumption) skips the
Certificate flight, which matters to RITM because the RA then has to
remember the session's CA and serial from the original handshake.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional, Tuple

from repro.errors import CertificateError, TLSError
from repro.perf import LRUCache
from repro.pki.ca import TrustStore
from repro.pki.certificate import CertificateChain
from repro.pki.validation import ValidationResult, validate_chain
from repro.tls.extensions import (
    Extension,
    has_ritm_server_confirmation,
    ritm_server_confirm_extension,
    ritm_support_extension,
    server_name_extension,
    session_ticket_extension,
    find_extension,
    SESSION_TICKET_TYPE,
)
from repro.tls.messages import (
    CertificateMessage,
    ClientHello,
    Finished,
    HandshakeType,
    NewSessionTicket,
    ServerHello,
    ServerHelloDone,
    parse_handshake_messages,
)
from repro.tls.records import ContentType, TLSRecord
from repro.tls.session import SessionCache, SessionState, TicketIssuer


class HandshakeStage(Enum):
    """Connection stages, matching the RA state field of Eq. 4."""

    INIT = "init"
    CLIENT_HELLO = "ClientHello"
    SERVER_HELLO = "ServerHello"
    ESTABLISHED = "established"
    CLOSED = "closed"


class ChainValidationCache:
    """Memoizes *successful* chain validations across connections.

    Chain validation runs one Ed25519 check per certificate — milliseconds
    each in this pure-Python stack — on every full handshake, although a
    flash crowd presents the same server chain thousands of times.  The
    cache keys on a digest of the exact chain bytes, a digest of the trust
    store contents, and the expected subject, and stores the
    :class:`~repro.pki.validation.ValidationResult` together with the
    chain's intersected validity window; a lookup outside that window (or
    after the trust store changed) re-runs the full validation.  Failed
    validations are never cached, so a forged chain always pays the full
    check and can never displace a useful entry.

    Share one instance per trust domain — e.g. across the connections of one
    client, or across a fleet behind one gateway (see docs/PERFORMANCE.md).
    """

    def __init__(self, maxsize: int = 1024) -> None:
        self._cache = LRUCache(maxsize=maxsize)

    @property
    def stats(self):
        """The underlying :class:`~repro.perf.cache.CacheStats` counters."""
        return self._cache.stats

    def __len__(self) -> int:
        return len(self._cache)

    @staticmethod
    def _chain_fingerprint(chain: CertificateChain) -> bytes:
        """Digest of the exact certificate bytes being validated."""
        digest = hashlib.sha256()
        for certificate in chain:
            digest.update(certificate.to_bytes())
        return digest.digest()

    @staticmethod
    def _trust_fingerprint(trust_store: TrustStore) -> bytes:
        """Digest of the trust store contents (roots added → new keys miss)."""
        digest = hashlib.sha256()
        for name in trust_store.names():
            digest.update(name.encode("utf-8"))
            digest.update(trust_store.public_key_for(name).key_bytes)
        return digest.digest()

    def validate(
        self,
        chain: CertificateChain,
        trust_store: TrustStore,
        now: int,
        expected_subject: Optional[str] = None,
    ) -> ValidationResult:
        """Drop-in memoized :func:`~repro.pki.validation.validate_chain`."""
        key = (
            self._chain_fingerprint(chain),
            self._trust_fingerprint(trust_store),
            expected_subject,
        )
        # Outside the validity window the cached verdict no longer applies:
        # the freshness-aware lookup counts it as a miss, drops the dead
        # entry, and the full validation below reports the precise failure.
        cached = self._cache.get(
            key, is_valid=lambda entry: entry[1] <= now <= entry[2]
        )
        if cached is not None:
            return cached[0]
        result = validate_chain(
            chain, trust_store, now=now, expected_subject=expected_subject
        )
        if result.valid:
            not_before = max(certificate.not_before for certificate in chain)
            not_after = min(certificate.not_after for certificate in chain)
            self._cache.put(key, (result, not_before, not_after))
        return result


@dataclass
class ClientConnectionConfig:
    """Client knobs: RITM support, resumption material, expected hostname."""

    server_name: str
    use_ritm_extension: bool = True
    session_id: bytes = b""
    session_ticket: bytes = b""
    extra_extensions: Tuple[Extension, ...] = ()
    #: Optional shared :class:`ChainValidationCache`; ``None`` validates the
    #: server chain from scratch on every full handshake.
    validation_cache: Optional[ChainValidationCache] = None


class TLSClientConnection:
    """The client half of a (simplified) TLS connection."""

    def __init__(self, config: ClientConnectionConfig, trust_store: TrustStore) -> None:
        self.config = config
        self.trust_store = trust_store
        self.stage = HandshakeStage.INIT
        self.server_chain: Optional[CertificateChain] = None
        self.validation: Optional[ValidationResult] = None
        self.negotiated_session_id: bytes = b""
        self.received_ticket: Optional[NewSessionTicket] = None
        self.server_confirmed_ritm = False
        self.resumed = False
        self.application_data_received: List[bytes] = []

    # -- outbound -------------------------------------------------------------

    def client_hello(self) -> TLSRecord:
        """Build the ClientHello record (with the RITM extension when enabled)."""
        extensions: List[Extension] = [server_name_extension(self.config.server_name)]
        if self.config.use_ritm_extension:
            extensions.append(ritm_support_extension())
        if self.config.session_ticket:
            extensions.append(session_ticket_extension(self.config.session_ticket))
        extensions.extend(self.config.extra_extensions)
        hello = ClientHello(
            session_id=self.config.session_id,
            extensions=tuple(extensions),
        )
        self.stage = HandshakeStage.CLIENT_HELLO
        return TLSRecord(ContentType.HANDSHAKE, hello.to_bytes())

    def finished(self) -> TLSRecord:
        """The client's Finished record (handshake completion)."""
        return TLSRecord(ContentType.HANDSHAKE, Finished().to_bytes())

    def application_data(self, payload: bytes) -> TLSRecord:
        """Wrap ``payload`` as application data (established connections only)."""
        if self.stage != HandshakeStage.ESTABLISHED:
            raise TLSError("cannot send application data before the handshake completes")
        return TLSRecord(ContentType.APPLICATION_DATA, payload)

    # -- inbound --------------------------------------------------------------

    def process_record(self, record: TLSRecord, now: int) -> List[TLSRecord]:
        """Consume one record from the server; returns records to send back."""
        responses: List[TLSRecord] = []
        if record.content_type == ContentType.HANDSHAKE:
            for handshake_type, message in parse_handshake_messages(record.payload):
                responses.extend(self._process_handshake(handshake_type, message, now))
        elif record.content_type == ContentType.APPLICATION_DATA:
            if self.stage != HandshakeStage.ESTABLISHED:
                raise TLSError("application data received before the handshake completed")
            self.application_data_received.append(record.payload)
        elif record.content_type == ContentType.ALERT:
            self.stage = HandshakeStage.CLOSED
        # RITM_STATUS records are not handled here: the plain TLS client
        # ignores them; the RITM client (repro.ritm.client) strips and
        # validates them before records reach this state machine.
        return responses

    def _process_handshake(self, handshake_type, message, now: int) -> List[TLSRecord]:
        responses: List[TLSRecord] = []
        if handshake_type == HandshakeType.SERVER_HELLO:
            if self.stage != HandshakeStage.CLIENT_HELLO:
                raise TLSError("unexpected ServerHello")
            self.stage = HandshakeStage.SERVER_HELLO
            self.negotiated_session_id = message.session_id
            self.server_confirmed_ritm = has_ritm_server_confirmation(list(message.extensions))
            if self.config.session_id and message.session_id == self.config.session_id:
                self.resumed = True
        elif handshake_type == HandshakeType.CERTIFICATE:
            if self.stage != HandshakeStage.SERVER_HELLO:
                raise TLSError("Certificate message out of order")
            self.server_chain = message.chain
            if self.config.validation_cache is not None:
                self.validation = self.config.validation_cache.validate(
                    message.chain,
                    self.trust_store,
                    now=now,
                    expected_subject=self.config.server_name,
                )
            else:
                self.validation = validate_chain(
                    message.chain,
                    self.trust_store,
                    now=now,
                    expected_subject=self.config.server_name,
                )
            if not self.validation:
                raise CertificateError(
                    f"standard validation failed: {self.validation.reason}"
                )
        elif handshake_type == HandshakeType.SERVER_HELLO_DONE:
            responses.append(self.finished())
        elif handshake_type == HandshakeType.FINISHED:
            if self.stage not in (HandshakeStage.SERVER_HELLO, HandshakeStage.ESTABLISHED):
                raise TLSError("Finished message out of order")
            if self.resumed and self.stage == HandshakeStage.SERVER_HELLO:
                # Abbreviated handshake: client responds with its own Finished.
                responses.append(self.finished())
            self.stage = HandshakeStage.ESTABLISHED
        elif handshake_type == HandshakeType.NEW_SESSION_TICKET:
            self.received_ticket = message
        return responses

    @property
    def is_established(self) -> bool:
        """Whether the handshake completed and the session is usable."""
        return self.stage == HandshakeStage.ESTABLISHED


@dataclass
class ServerConnectionConfig:
    """Server knobs: certificate chain, resumption, RITM-terminator behaviour."""

    chain: CertificateChain
    acts_as_ritm_terminator: bool = False
    issue_session_tickets: bool = True
    session_lifetime: int = 24 * 3600


class TLSServerConnection:
    """The server half of a (simplified) TLS connection."""

    def __init__(
        self,
        config: ServerConnectionConfig,
        session_cache: Optional[SessionCache] = None,
        ticket_issuer: Optional[TicketIssuer] = None,
    ) -> None:
        self.config = config
        self.session_cache = session_cache if session_cache is not None else SessionCache()
        self.ticket_issuer = ticket_issuer if ticket_issuer is not None else TicketIssuer()
        self.stage = HandshakeStage.INIT
        self.client_supports_ritm = False
        self.resumed = False
        self.session_id: bytes = b""
        self.application_data_received: List[bytes] = []

    def process_record(self, record: TLSRecord, now: int) -> List[TLSRecord]:
        """Consume one record from the client; returns records to send back."""
        responses: List[TLSRecord] = []
        if record.content_type == ContentType.HANDSHAKE:
            for handshake_type, message in parse_handshake_messages(record.payload):
                responses.extend(self._process_handshake(handshake_type, message, now))
        elif record.content_type == ContentType.APPLICATION_DATA:
            if self.stage != HandshakeStage.ESTABLISHED:
                raise TLSError("application data received before the handshake completed")
            self.application_data_received.append(record.payload)
        elif record.content_type == ContentType.ALERT:
            self.stage = HandshakeStage.CLOSED
        return responses

    def application_data(self, payload: bytes) -> TLSRecord:
        """Wrap ``payload`` as application data (established connections only)."""
        if self.stage != HandshakeStage.ESTABLISHED:
            raise TLSError("cannot send application data before the handshake completes")
        return TLSRecord(ContentType.APPLICATION_DATA, payload)

    # -- internals --------------------------------------------------------------

    def _process_handshake(self, handshake_type, message, now: int) -> List[TLSRecord]:
        responses: List[TLSRecord] = []
        if handshake_type == HandshakeType.CLIENT_HELLO:
            responses.extend(self._respond_to_client_hello(message, now))
        elif handshake_type == HandshakeType.FINISHED:
            if self.stage == HandshakeStage.SERVER_HELLO:
                flight = [Finished().to_bytes()]
                if self.config.issue_session_tickets and not self.resumed:
                    state = self._session_state(now)
                    ticket = NewSessionTicket(
                        lifetime_seconds=self.config.session_lifetime,
                        ticket=self.ticket_issuer.issue(state),
                    )
                    flight.append(ticket.to_bytes())
                responses.append(TLSRecord(ContentType.HANDSHAKE, b"".join(flight)))
                self.stage = HandshakeStage.ESTABLISHED
            elif self.stage == HandshakeStage.ESTABLISHED:
                pass  # client's Finished for a resumed session; nothing to send
            else:
                raise TLSError("Finished message out of order")
        return responses

    def _respond_to_client_hello(self, hello: ClientHello, now: int) -> List[TLSRecord]:
        from repro.tls.extensions import has_ritm_support

        self.client_supports_ritm = has_ritm_support(list(hello.extensions))
        extensions: List[Extension] = []
        if self.config.acts_as_ritm_terminator and self.client_supports_ritm:
            extensions.append(ritm_server_confirm_extension())

        resumed_state = self._try_resume(hello, now)
        if resumed_state is not None:
            self.resumed = True
            self.session_id = resumed_state.session_id
            server_hello = ServerHello(
                session_id=resumed_state.session_id,
                cipher_suite=resumed_state.cipher_suite,
                extensions=tuple(extensions),
            )
            flight = server_hello.to_bytes() + Finished().to_bytes()
            self.stage = HandshakeStage.SERVER_HELLO
            result = [TLSRecord(ContentType.HANDSHAKE, flight)]
            # Server considers the session live as soon as its Finished is out.
            self.stage = HandshakeStage.ESTABLISHED
            return result

        self.session_id = self.session_cache.new_session_id()
        server_hello = ServerHello(session_id=self.session_id, extensions=tuple(extensions))
        flight = (
            server_hello.to_bytes()
            + CertificateMessage(self.config.chain).to_bytes()
            + ServerHelloDone().to_bytes()
        )
        self.stage = HandshakeStage.SERVER_HELLO
        self.session_cache.store(self._session_state(now))
        return [TLSRecord(ContentType.HANDSHAKE, flight)]

    def _try_resume(self, hello: ClientHello, now: int) -> Optional[SessionState]:
        if hello.session_id:
            state = self.session_cache.lookup(hello.session_id, now)
            if state is not None:
                return state
        ticket_extension = find_extension(list(hello.extensions), SESSION_TICKET_TYPE)
        if ticket_extension is not None and ticket_extension.data:
            return self.ticket_issuer.validate(ticket_extension.data, now)
        return None

    def _session_state(self, now: int) -> SessionState:
        leaf = self.config.chain.leaf
        return SessionState(
            session_id=self.session_id,
            server_name=leaf.subject,
            cipher_suite=ServerHello().cipher_suite,
            established_at=now,
            ca_name=leaf.issuer,
            serial_value=leaf.serial.value,
        )
