"""Streaming million-client workload generation (ROADMAP item 5).

The legacy workload modules (:mod:`repro.workloads.population`,
:mod:`repro.workloads.revocation_trace`) materialize one Python object per
client or per event, which caps traces around ``10^5`` events.  This module
replaces that with a *counter-based* streaming generator: every client-hello
event is a pure function of ``(StreamConfig, event index)``, produced in
compact ``array`` batches so a 1M-client / 30-day trace generates in
``O(batch_size)`` memory and can resume from any cursor.

The model has three statistical components, each pinned by the test layer in
``tests/workloads/``:

* **Site popularity** follows a Zipf law with configurable exponent
  (``weight(rank) = 1 / rank**s``), sampled by inverse CDF over a
  precomputed cumulative-weight array — memory scales with *sites*, never
  with clients or events.
* **Event times** follow a diurnal intensity curve
  ``lam(t) = 1 + a*sin(2*pi*(t/DAY - 0.25))`` — the same shape as
  :func:`repro.workloads.revocation_trace` uses for revocation timing —
  integrated analytically and inverted through a monotone interpolation
  table, so timestamps are strictly increasing across the whole trace.
* **Certificate lifetimes** are drawn per site from a configurable mix
  anchored on the 39-month CA/Browser-Forum maximum that
  :mod:`repro.pki.ca` issues by default (paper §VIII).

Determinism contract: event ``i`` consumes exactly
:data:`DRAWS_PER_EVENT` draws from the stratum RNG
``random.Random(f"{seed}:events:{i // STRATUM_EVENTS}")`` in a fixed order
(time jitter, client uniform, site uniform), so traces are independent of
batch size and resumable from any index.  :func:`materialize_trace` is the
intentionally naive per-event oracle the differential suite pins the
streaming path against.
"""

from __future__ import annotations

import bisect
import math
import random
from array import array
from dataclasses import dataclass
from typing import Dict, Iterator, List, NamedTuple, Optional, Sequence, Tuple

from repro.pki.ca import DEFAULT_VALIDITY_SECONDS

__all__ = [
    "DAY_SECONDS",
    "DEFAULT_LIFETIME_MIX",
    "DRAWS_PER_EVENT",
    "EVENT_BYTES",
    "STRATUM_EVENTS",
    "ClientEvent",
    "EventBatch",
    "StreamConfig",
    "StreamingWorkload",
    "intensity_table",
    "invert_intensity",
    "materialize_site_profile",
    "materialize_trace",
    "uniform_slot_counts",
    "zipf_cumulative_weights",
]

#: Seconds per day; period of the diurnal intensity curve.
DAY_SECONDS = 86_400

#: Events covered by one internal RNG stratum.  Fixed — never derived from
#: the batch size — so the generated trace is identical for every batch size
#: and resuming from an arbitrary cursor only replays at most one stratum.
STRATUM_EVENTS = 1024

#: Uniform draws consumed per event, in order: time jitter, client, site.
DRAWS_PER_EVENT = 3

#: Compact-array bytes per buffered event (float64 time + uint64 client +
#: uint32 site).  ``peak_batch_bytes`` is bounded by ``EVENT_BYTES *
#: batch_size`` regardless of client count — the soak scenario's
#: ``memory-bounded`` verdict asserts exactly this.
EVENT_BYTES = 20

#: Exclusive upper bound of the 3-byte serial space used across scenarios.
_SERIAL_SPACE = 256**3 - 1

#: Samples in the precomputed inverse-intensity interpolation table.
_TABLE_SAMPLES = 4096

#: Default certificate-lifetime mix ``(seconds, weight)``: short-lived 90-day
#: automation certs dominate, one-year renewals next, and a tail at the
#: 39-month CA/B-Forum maximum from :mod:`repro.pki.ca`.
DEFAULT_LIFETIME_MIX: Tuple[Tuple[int, float], ...] = (
    (90 * DAY_SECONDS, 0.60),
    (365 * DAY_SECONDS, 0.25),
    (DEFAULT_VALIDITY_SECONDS, 0.15),
)


class ClientEvent(NamedTuple):
    """One client hello: global index, absolute time, client id, site rank."""

    index: int
    time: float
    client: int
    site: int


@dataclass(frozen=True)
class StreamConfig:
    """Full specification of a streamed client-hello trace.

    A ``StreamConfig`` plus an event index determines an event completely;
    two generators built from equal configs emit byte-identical traces.
    """

    #: Distinct clients in the population (ids ``0 .. clients-1``).
    clients: int
    #: Distinct sites, ranked by popularity (rank ``0`` most popular).
    sites: int
    #: Total client-hello events across the whole trace.
    events_total: int
    #: Trace length in seconds (the diurnal curve repeats every day).
    duration_seconds: int
    #: Absolute timestamp of the start of the trace window.
    start_time: float = 0.0
    #: Zipf popularity exponent ``s`` in ``weight(rank) = 1 / rank**s``.
    zipf_exponent: float = 1.1
    #: Diurnal swing ``a`` in ``lam(t) = 1 + a*sin(...)``; must stay below
    #: ``1.0`` so the intensity never touches zero.
    diurnal_amplitude: float = 0.7
    #: Certificate-lifetime mix as ``(seconds, weight)`` pairs.
    lifetime_mix: Tuple[Tuple[int, float], ...] = DEFAULT_LIFETIME_MIX
    #: RNG seed; every derived stream is keyed off this value.
    seed: int = 404
    #: Events buffered per compact-array batch (the memory knob).
    batch_size: int = 8192

    def __post_init__(self) -> None:
        """Validate every knob eagerly so misconfiguration fails loudly."""
        if self.clients < 1:
            raise ValueError("clients must be >= 1")
        if self.sites < 1:
            raise ValueError("sites must be >= 1")
        if self.events_total < 1:
            raise ValueError("events_total must be >= 1")
        if self.duration_seconds <= 0:
            raise ValueError("duration_seconds must be positive")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.zipf_exponent <= 0.0:
            raise ValueError("zipf_exponent must be positive")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError("diurnal_amplitude must be in [0, 1)")
        if not self.lifetime_mix:
            raise ValueError("lifetime_mix must not be empty")
        for seconds, weight in self.lifetime_mix:
            if seconds <= 0 or weight <= 0:
                raise ValueError("lifetime_mix entries must be positive")


def zipf_cumulative_weights(sites: int, exponent: float) -> array:
    """Running-sum Zipf weights ``1/rank**s`` for ranks ``1..sites``.

    The accumulation order is part of the determinism contract: the
    materialized oracle reproduces the exact same floats by summing in the
    same order.
    """
    cumulative = array("d")
    total = 0.0
    for rank in range(1, sites + 1):
        total += 1.0 / (rank**exponent)
        cumulative.append(total)
    return cumulative


def _cumulative_intensity(seconds: float, amplitude: float) -> float:
    """Integral of the diurnal intensity ``lam`` over ``[0, seconds]``."""
    two_pi = 2.0 * math.pi
    scale = amplitude * DAY_SECONDS / two_pi
    phase = two_pi * (seconds / DAY_SECONDS - 0.25)
    return seconds - scale * (math.cos(phase) - math.cos(-0.25 * two_pi))


def intensity_table(duration_seconds: int, amplitude: float) -> array:
    """Monotone table of cumulative intensity at evenly spaced times.

    Sample ``j`` holds the integral of the diurnal curve over
    ``[0, j * duration/(samples-1)]``; both the streaming generator and the
    materialized oracle invert event quantiles through this same table, so
    their timestamps agree bit for bit.
    """
    table = array("d")
    step = duration_seconds / (_TABLE_SAMPLES - 1)
    for sample in range(_TABLE_SAMPLES):
        table.append(_cumulative_intensity(sample * step, amplitude))
    return table


def invert_intensity(quantile: float, table: array, duration_seconds: int) -> float:
    """Seconds offset at which the cumulative intensity reaches ``quantile``.

    Piecewise-linear inversion of :func:`intensity_table` by binary search;
    strictly increasing in ``quantile`` because the diurnal intensity is
    strictly positive.
    """
    target = quantile * table[-1]
    index = bisect.bisect_left(table, target)
    if index <= 0:
        return 0.0
    if index >= len(table):
        return float(duration_seconds)
    step = duration_seconds / (len(table) - 1)
    low, high = table[index - 1], table[index]
    fraction = (target - low) / (high - low) if high > low else 0.0
    return (index - 1 + fraction) * step


class EventBatch:
    """A contiguous run of events stored as compact typed arrays.

    Iterating yields :class:`ClientEvent` views; the backing storage is
    exactly ``EVENT_BYTES`` per event regardless of population size.
    """

    __slots__ = ("start", "times", "clients", "sites")

    def __init__(self, start: int, times: array, clients: array, sites: array):
        """Wrap the filled arrays for events ``start .. start+len-1``."""
        self.start = start
        self.times = times
        self.clients = clients
        self.sites = sites

    def __len__(self) -> int:
        """Number of events in the batch."""
        return len(self.times)

    def __iter__(self) -> Iterator[ClientEvent]:
        """Yield each event as a :class:`ClientEvent`."""
        for offset in range(len(self.times)):
            yield ClientEvent(
                self.start + offset,
                self.times[offset],
                self.clients[offset],
                self.sites[offset],
            )

    @property
    def nbytes(self) -> int:
        """Bytes of compact-array storage held by this batch."""
        return sum(
            len(buf) * buf.itemsize for buf in (self.times, self.clients, self.sites)
        )


def _mix_lifetime(mix: Sequence[Tuple[int, float]], draw: float) -> int:
    """Lifetime for a uniform ``draw`` walked over the normalized mix."""
    total = sum(weight for _, weight in mix)
    accumulated = 0.0
    for seconds, weight in mix:
        accumulated += weight / total
        if draw < accumulated:
            return seconds
    return mix[-1][0]


class StreamingWorkload:
    """Resumable streaming generator over a :class:`StreamConfig`.

    Memory footprint is ``O(sites + batch_size)``: the Zipf cumulative
    array, the intensity table, a bounded per-site profile cache, and one
    in-flight :class:`EventBatch`.  Nothing scales with ``clients`` or
    ``events_total``.
    """

    def __init__(self, config: StreamConfig):
        """Precompute the sampling tables for ``config``."""
        self.config = config
        self._site_cum = zipf_cumulative_weights(config.sites, config.zipf_exponent)
        self._table = intensity_table(
            config.duration_seconds, config.diurnal_amplitude
        )
        self._profiles: Dict[int, Tuple[int, int]] = {}
        self._peak_batch_bytes = 0

    @property
    def peak_batch_bytes(self) -> int:
        """Largest compact-array batch built so far, in bytes."""
        return self._peak_batch_bytes

    def footprint_bytes(self) -> int:
        """Bytes held by the generator's tables and per-site cache."""
        tables = sum(
            len(buf) * buf.itemsize for buf in (self._site_cum, self._table)
        )
        # Conservative per-entry estimate for the dict of (lifetime, serial)
        # tuples: key + tuple + two ints.
        return tables + 128 * len(self._profiles)

    def fraction_at(self, rel_seconds: float) -> float:
        """Fraction of the trace scheduled before offset ``rel_seconds``."""
        duration = self.config.duration_seconds
        clamped = min(max(rel_seconds, 0.0), float(duration))
        step = duration / (len(self._table) - 1)
        position = clamped / step
        index = min(int(position), len(self._table) - 2)
        low, high = self._table[index], self._table[index + 1]
        value = low + (position - index) * (high - low)
        return value / self._table[-1]

    def index_at_time(self, rel_seconds: float) -> int:
        """Index of the first event at or after offset ``rel_seconds``.

        Monotone in ``rel_seconds`` and exact at the endpoints, so
        consecutive period boundaries partition ``range(events_total)``
        without gaps or overlaps.  Individual jittered timestamps may stray
        across a boundary by at most one event.
        """
        total = self.config.events_total
        return min(total, max(0, round(self.fraction_at(rel_seconds) * total)))

    def period_counts(self, boundaries: Sequence[float]) -> List[int]:
        """Events scheduled in each window between consecutive boundaries.

        ``boundaries`` are absolute times (``len(boundaries) - 1`` windows);
        the counts sum to ``events_total`` when the boundaries span the
        whole trace.
        """
        start = self.config.start_time
        indexes = [self.index_at_time(edge - start) for edge in boundaries]
        return [indexes[i + 1] - indexes[i] for i in range(len(indexes) - 1)]

    def site_profile(self, site: int) -> Tuple[int, int]:
        """Deterministic ``(lifetime_seconds, serial)`` for a site.

        Derived from ``Random(f"{seed}:site:{site}")`` with a fixed draw
        order (lifetime uniform, then serial) and cached, so the cache is
        bounded by the number of *distinct sites seen*, never by clients.
        """
        cached = self._profiles.get(site)
        if cached is not None:
            return cached
        rng = random.Random(f"{self.config.seed}:site:{site}")
        lifetime = _mix_lifetime(self.config.lifetime_mix, rng.random())
        serial = rng.randrange(1, _SERIAL_SPACE)
        profile = (lifetime, serial)
        self._profiles[site] = profile
        return profile

    def site_lifetime(self, site: int) -> int:
        """Certificate lifetime in seconds for ``site``."""
        return self.site_profile(site)[0]

    def site_serial(self, site: int) -> int:
        """Deterministic 3-byte certificate serial for ``site``."""
        return self.site_profile(site)[1]

    def batches(
        self, start: int = 0, stop: Optional[int] = None
    ) -> Iterator[EventBatch]:
        """Stream events ``start .. stop-1`` as compact-array batches.

        Resuming from any cursor replays at most one RNG stratum; the
        emitted events are identical to the corresponding slice of a
        full-trace run regardless of ``start`` or ``batch_size``.
        """
        cfg = self.config
        end = cfg.events_total if stop is None else min(stop, cfg.events_total)
        index = max(0, start)
        stratum = -1
        rng = random.Random()
        while index < end:
            limit = min(end, index + cfg.batch_size)
            times = array("d")
            clients = array("Q")
            sites = array("I")
            for event_index in range(index, limit):
                event_stratum, offset = divmod(event_index, STRATUM_EVENTS)
                if event_stratum != stratum:
                    stratum = event_stratum
                    rng = random.Random(f"{cfg.seed}:events:{stratum}")
                    for _ in range(DRAWS_PER_EVENT * offset):
                        rng.random()
                jitter = rng.random()
                client_draw = rng.random()
                site_draw = rng.random()
                quantile = (event_index + jitter) / cfg.events_total
                times.append(
                    cfg.start_time
                    + invert_intensity(quantile, self._table, cfg.duration_seconds)
                )
                clients.append(min(cfg.clients - 1, int(client_draw * cfg.clients)))
                target = site_draw * self._site_cum[-1]
                site = bisect.bisect_left(self._site_cum, target)
                sites.append(min(site, cfg.sites - 1))
            batch = EventBatch(index, times, clients, sites)
            if batch.nbytes > self._peak_batch_bytes:
                self._peak_batch_bytes = batch.nbytes
            yield batch
            index = limit

    def events(
        self, start: int = 0, stop: Optional[int] = None
    ) -> Iterator[ClientEvent]:
        """Stream individual :class:`ClientEvent` values over ``batches``."""
        for batch in self.batches(start, stop):
            yield from batch


def materialize_trace(config: StreamConfig) -> List[ClientEvent]:
    """Materialized small-N oracle for the differential test suite.

    Intentionally naive and independent of :class:`StreamingWorkload`'s
    machinery: one Python object per event, a fresh stratum RNG re-seeded
    (and burned forward) for *every* event, and a linear scan — not a
    binary search — over the Zipf cumulative weights and the intensity
    table.  Only the elementary constants (stratum size, draw order, table
    contents) are shared, so agreement proves the streaming/batching layer
    adds nothing and loses nothing.
    """
    cumulative: List[float] = []
    total = 0.0
    for rank in range(1, config.sites + 1):
        total += 1.0 / (rank**config.zipf_exponent)
        cumulative.append(total)
    table = intensity_table(config.duration_seconds, config.diurnal_amplitude)
    step = config.duration_seconds / (len(table) - 1)

    events: List[ClientEvent] = []
    for index in range(config.events_total):
        stratum, offset = divmod(index, STRATUM_EVENTS)
        rng = random.Random(f"{config.seed}:events:{stratum}")
        for _ in range(DRAWS_PER_EVENT * offset):
            rng.random()
        jitter = rng.random()
        client_draw = rng.random()
        site_draw = rng.random()

        target = (index + jitter) / config.events_total * table[-1]
        position = 0
        while position < len(table) and table[position] < target:
            position += 1
        if position <= 0:
            seconds = 0.0
        elif position >= len(table):
            seconds = float(config.duration_seconds)
        else:
            low, high = table[position - 1], table[position]
            fraction = (target - low) / (high - low) if high > low else 0.0
            seconds = (position - 1 + fraction) * step

        client = min(config.clients - 1, int(client_draw * config.clients))

        site_target = site_draw * cumulative[-1]
        site = 0
        while site < len(cumulative) and cumulative[site] < site_target:
            site += 1
        site = min(site, config.sites - 1)

        events.append(
            ClientEvent(index, config.start_time + seconds, client, site)
        )
    return events


def materialize_site_profile(config: StreamConfig, site: int) -> Tuple[int, int]:
    """Oracle twin of :meth:`StreamingWorkload.site_profile` (no cache)."""
    rng = random.Random(f"{config.seed}:site:{site}")
    draw = rng.random()
    mix_total = sum(weight for _, weight in config.lifetime_mix)
    accumulated = 0.0
    lifetime = config.lifetime_mix[-1][0]
    for seconds, weight in config.lifetime_mix:
        accumulated += weight / mix_total
        if draw < accumulated:
            lifetime = seconds
            break
    serial = rng.randrange(1, _SERIAL_SPACE)
    return lifetime, serial


def uniform_slot_counts(total: int, slots: int) -> List[int]:
    """Spread ``total`` across ``slots`` as evenly as possible.

    Byte-compatible with the fleet engine's original bespoke
    ``divmod``-based client-load spread: the first ``total % slots`` slots
    get one extra unit.  Kept as the legacy scheduling path so pre-existing
    client-load scenarios keep producing byte-identical reports.
    """
    if slots < 1:
        raise ValueError("slots must be >= 1")
    base, remainder = divmod(total, slots)
    return [base + (1 if slot < remainder else 0) for slot in range(slots)]
