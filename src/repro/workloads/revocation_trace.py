"""Synthetic revocation traces calibrated to the paper's dataset (§VII-A).

The paper uses the SANS Internet Storm Center CRL collection: 254 separate
revocation lists, 1,381,992 unique revocations between January 2014 and June
2015 (an average of 5,440 revocations per CRL), mostly 3-byte serial numbers,
and a dramatic spike around the Heartbleed disclosure with its highest rates
on 16–17 April 2014.  The largest single CRL holds 339,557 entries (7.5 MB).

That dataset is not redistributable, so this module generates a synthetic
trace that reproduces the published aggregate statistics exactly where they
are stated and plausibly where they are not:

* the total number of revocations and the number of CAs match;
* per-CA volumes follow a heavy-tailed split in which the largest CA holds
  ~25 % of all revocations (as the paper observes);
* the time series has a roughly constant base rate with weekly structure plus
  a Heartbleed burst spread over 14–20 April 2014 peaking on the 16th–17th;
* serial numbers are 3 bytes wide.

All randomness is seeded, so every experiment is reproducible run to run.
"""

from __future__ import annotations

import datetime as _dt
import math
import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence, Tuple

# -- published calibration constants -------------------------------------------------

TOTAL_REVOCATIONS = 1_381_992
NUMBER_OF_CRLS = 254
AVERAGE_REVOCATIONS_PER_CRL = 5_440
LARGEST_CRL_ENTRIES = 339_557
LARGEST_CRL_BYTES = 7_500_000
SERIAL_BYTES = 3

#: Trace horizon used by Fig. 4 (and the Fig. 6 cost simulation).
TRACE_START = _dt.date(2014, 1, 1)
TRACE_END = _dt.date(2015, 6, 30)
COST_TRACE_END = _dt.date(2015, 8, 1)

#: Heartbleed disclosure and the burst window around it.
HEARTBLEED_DISCLOSURE = _dt.date(2014, 4, 7)
HEARTBLEED_BURST_START = _dt.date(2014, 4, 14)
HEARTBLEED_BURST_PEAK = _dt.date(2014, 4, 16)
HEARTBLEED_BURST_END = _dt.date(2014, 4, 20)
#: Week analysed in Fig. 7.
HEARTBLEED_WEEK = (_dt.date(2014, 4, 14), _dt.date(2014, 4, 20))

SECONDS_PER_DAY = 86_400


def _date_to_unix(day: _dt.date) -> int:
    return int(_dt.datetime(day.year, day.month, day.day, tzinfo=_dt.timezone.utc).timestamp())


@dataclass(frozen=True)
class DailyRevocations:
    """Number of revocations issued on one calendar day."""

    day: _dt.date
    count: int

    @property
    def unix_midnight(self) -> int:
        """The day's 00:00 UTC as a unix timestamp."""
        return _date_to_unix(self.day)


@dataclass
class RevocationTrace:
    """A complete synthetic trace: per-day counts plus the per-CA split."""

    daily: List[DailyRevocations]
    ca_totals: Dict[str, int]
    seed: int

    @property
    def total(self) -> int:
        """Total revocations across the whole trace."""
        return sum(entry.count for entry in self.daily)

    def days(self) -> List[_dt.date]:
        """The calendar days the trace covers, in order."""
        return [entry.day for entry in self.daily]

    def between(self, start: _dt.date, end: _dt.date) -> List[DailyRevocations]:
        """The inclusive sub-trace between ``start`` and ``end``."""
        return [entry for entry in self.daily if start <= entry.day <= end]

    def monthly_counts(self) -> List[Tuple[str, int]]:
        """(YYYY-MM, count) pairs — the top panel of Fig. 4."""
        buckets: Dict[str, int] = {}
        for entry in self.daily:
            key = f"{entry.day.year:04d}-{entry.day.month:02d}"
            buckets[key] = buckets.get(key, 0) + entry.count
        return sorted(buckets.items())

    def peak_day(self) -> DailyRevocations:
        """The single day with the most revocations (the Heartbleed spike)."""
        return max(self.daily, key=lambda entry: entry.count)

    def counts_per_bin(
        self, start: _dt.date, end: _dt.date, bin_seconds: int, seed: int = 7
    ) -> List[Tuple[int, int]]:
        """Spread daily counts over fixed-size bins within [start, end].

        Within a day, revocation issuance follows a diurnal profile (more
        activity during business hours); the profile matters only for
        sub-hour bins.  Returns (bin start Unix time, count) pairs.
        """
        rng = random.Random(seed)
        results: List[Tuple[int, int]] = []
        for entry in self.between(start, end):
            day_start = entry.unix_midnight
            bins_per_day = max(1, SECONDS_PER_DAY // bin_seconds)
            weights = [_diurnal_weight(index / bins_per_day) for index in range(bins_per_day)]
            total_weight = sum(weights)
            allocated = 0
            counts = []
            for index, weight in enumerate(weights):
                share = int(round(entry.count * weight / total_weight))
                counts.append(share)
                allocated += share
            # Fix rounding drift by adjusting random bins.
            while allocated != entry.count:
                index = rng.randrange(bins_per_day)
                if allocated < entry.count:
                    counts[index] += 1
                    allocated += 1
                elif counts[index] > 0:
                    counts[index] -= 1
                    allocated -= 1
            for index, count in enumerate(counts):
                results.append((day_start + index * bin_seconds, count))
        return results


def _diurnal_weight(fraction_of_day: float) -> float:
    """Business-hours-heavy issuance profile (arbitrary units, min 0.3)."""
    return 1.0 + 0.7 * math.sin(2 * math.pi * (fraction_of_day - 0.25))


def _heartbleed_extra(day: _dt.date) -> float:
    """Relative intensity of the Heartbleed burst on ``day`` (0 outside it)."""
    if not HEARTBLEED_BURST_START <= day <= HEARTBLEED_BURST_END:
        return 0.0
    peak_offset = abs((day - HEARTBLEED_BURST_PEAK).days)
    # The 16th and 17th carry the highest rates; decay on either side.
    if day in (HEARTBLEED_BURST_PEAK, HEARTBLEED_BURST_PEAK + _dt.timedelta(days=1)):
        return 1.0
    return 0.45 / peak_offset


def generate_trace(
    seed: int = 2016,
    total_revocations: int = TOTAL_REVOCATIONS,
    number_of_cas: int = NUMBER_OF_CRLS,
    start: _dt.date = TRACE_START,
    end: _dt.date = COST_TRACE_END,
    heartbleed_share: float = 0.22,
) -> RevocationTrace:
    """Generate the calibrated synthetic trace.

    ``heartbleed_share`` is the fraction of all revocations concentrated in
    the burst week; ~22 % reproduces a peak-day rate roughly 25× the base
    rate, matching the shape of Fig. 4.
    """
    rng = random.Random(seed)
    days: List[_dt.date] = []
    cursor = start
    while cursor <= end:
        days.append(cursor)
        cursor += _dt.timedelta(days=1)

    burst_total = int(total_revocations * heartbleed_share)
    base_total = total_revocations - burst_total

    base_weights = []
    for day in days:
        weekly = 1.0 - 0.35 * (day.weekday() >= 5)  # weekends are quieter
        jitter = rng.uniform(0.75, 1.25)
        base_weights.append(weekly * jitter)
    weight_sum = sum(base_weights)

    burst_weights = [_heartbleed_extra(day) for day in days]
    burst_sum = sum(burst_weights) or 1.0

    counts: List[int] = []
    for base_weight, burst_weight in zip(base_weights, burst_weights):
        count = base_total * base_weight / weight_sum + burst_total * burst_weight / burst_sum
        counts.append(int(round(count)))
    # Adjust rounding drift on the quiet final day.
    drift = total_revocations - sum(counts)
    counts[-1] = max(0, counts[-1] + drift)

    daily = [DailyRevocations(day=day, count=count) for day, count in zip(days, counts)]
    ca_totals = _split_across_cas(total_revocations, number_of_cas, rng)
    return RevocationTrace(daily=daily, ca_totals=ca_totals, seed=seed)


def _split_across_cas(total: int, number_of_cas: int, rng: random.Random) -> Dict[str, int]:
    """Heavy-tailed per-CA totals: the largest CA holds ~25 % of everything."""
    names = [f"CA{index:03d}" for index in range(number_of_cas)]
    weights = [1.0 / (rank + 1) ** 1.1 for rank in range(number_of_cas)]
    weight_sum = sum(weights)
    totals = {}
    remaining = total - LARGEST_CRL_ENTRIES
    totals[names[0]] = LARGEST_CRL_ENTRIES
    rest_sum = weight_sum - weights[0]
    allocated = 0
    for name, weight in zip(names[1:], weights[1:]):
        share = int(remaining * weight / rest_sum)
        totals[name] = share
        allocated += share
    totals[names[-1]] += remaining - allocated
    return totals


def serials_for_count(count: int, seed: int = 0) -> List[int]:
    """``count`` distinct 3-byte serial numbers (deterministic)."""
    rng = random.Random(seed)
    space = 256**SERIAL_BYTES - 1
    if count > space:
        raise ValueError("more serials requested than the 3-byte space holds")
    return rng.sample(range(1, space + 1), count)


def largest_crl_serials(seed: int = 1) -> List[int]:
    """The serial set of the paper's largest CRL (339,557 entries)."""
    return serials_for_count(LARGEST_CRL_ENTRIES, seed)
