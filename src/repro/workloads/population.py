"""City-population model for estimating RA counts per CDN pricing region.

The paper (§VII-C) sizes the RA deployment from the MaxMind city dataset:
2.3 billion people across 47,980 cities, with the number of RAs assumed
proportional to population ("we estimate that the number of RAs is
proportional to the population size"), e.g. 10 clients per RA giving 230
million RAs world-wide.  The real dataset is not bundled, so this module
generates a synthetic catalogue with the same aggregate properties:

* the same total population and city count (configurable);
* a Zipf-like population distribution across cities;
* cities partitioned into CloudFront pricing regions according to the
  region's share of world population.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List

from repro.cdn.geography import POPULATION_SHARE, GeoLocation, Region

#: Calibration constants from the paper.
TOTAL_POPULATION = 2_300_000_000
TOTAL_CITIES = 47_980
DEFAULT_CLIENTS_PER_RA = 10


@dataclass(frozen=True)
class City:
    """One city: name, region, population, and a within-region location."""

    name: str
    region: Region
    population: int
    distance_factor: float

    def location(self) -> GeoLocation:
        """The city as a network location (region + distance factor)."""
        return GeoLocation(region=self.region, distance_factor=self.distance_factor)


@dataclass
class PopulationModel:
    """A synthetic world: cities with populations, partitioned into regions."""

    cities: List[City]

    @property
    def total_population(self) -> int:
        """Sum of the modelled client population across all cities."""
        return sum(city.population for city in self.cities)

    def population_by_region(self) -> Dict[Region, int]:
        """Client population aggregated per network region."""
        totals: Dict[Region, int] = {region: 0 for region in Region}
        for city in self.cities:
            totals[city.region] += city.population
        return totals

    def ras_by_region(self, clients_per_ra: int = DEFAULT_CLIENTS_PER_RA) -> Dict[Region, int]:
        """Number of RAs per region for a given clients-per-RA density."""
        if clients_per_ra <= 0:
            raise ValueError("clients_per_ra must be positive")
        return {
            region: population // clients_per_ra
            for region, population in self.population_by_region().items()
        }

    def total_ras(self, clients_per_ra: int = DEFAULT_CLIENTS_PER_RA) -> int:
        """Fleet-wide RA count at the given clients-per-RA provisioning."""
        return sum(self.ras_by_region(clients_per_ra).values())

    def largest_cities(self, count: int) -> List[City]:
        """The ``count`` most populous cities, descending."""
        return sorted(self.cities, key=lambda city: city.population, reverse=True)[:count]

    def sample_locations(self, count: int, seed: int = 0) -> List[GeoLocation]:
        """Sample ``count`` locations weighted by city population."""
        rng = random.Random(seed)
        weights = [city.population for city in self.cities]
        chosen = rng.choices(self.cities, weights=weights, k=count)
        return [city.location() for city in chosen]


def generate_population(
    seed: int = 42,
    total_population: int = TOTAL_POPULATION,
    total_cities: int = TOTAL_CITIES,
    zipf_exponent: float = 1.05,
) -> PopulationModel:
    """Build the synthetic city catalogue.

    City sizes follow a Zipf law with exponent ``zipf_exponent`` (population
    of the rank-k city proportional to ``1/k^s``), which reproduces the long
    tail of real city-size distributions.
    """
    rng = random.Random(seed)

    # Decide how many cities each region gets (proportional to its share).
    regions = list(Region)
    city_counts = {
        region: max(1, int(total_cities * POPULATION_SHARE[region])) for region in regions
    }
    drift = total_cities - sum(city_counts.values())
    city_counts[Region.EUROPE] += drift

    # Global Zipf weights over all city ranks.
    weights = [1.0 / (rank**zipf_exponent) for rank in range(1, total_cities + 1)]
    weight_sum = sum(weights)

    # Assign ranks to regions so each region's population share is respected:
    # iterate ranks largest-first and give each to the region whose share is
    # most under-served so far.
    target_share = {region: POPULATION_SHARE[region] for region in regions}
    assigned_weight = {region: 0.0 for region in regions}
    remaining_cities = dict(city_counts)
    assignments: List[Region] = []
    for rank_weight in weights:
        deficits = {
            region: target_share[region] - assigned_weight[region] / weight_sum
            for region in regions
            if remaining_cities[region] > 0
        }
        region = max(deficits, key=deficits.get)
        assignments.append(region)
        assigned_weight[region] += rank_weight
        remaining_cities[region] -= 1

    cities: List[City] = []
    allocated = 0
    for index, (rank_weight, region) in enumerate(zip(weights, assignments)):
        population = int(total_population * rank_weight / weight_sum)
        allocated += population
        cities.append(
            City(
                name=f"city-{index:05d}",
                region=region,
                population=population,
                distance_factor=rng.random(),
            )
        )
    # Put the rounding remainder in the largest city.
    remainder = total_population - allocated
    if cities and remainder > 0:
        first = cities[0]
        cities[0] = City(
            name=first.name,
            region=first.region,
            population=first.population + remainder,
            distance_factor=first.distance_factor,
        )
    return PopulationModel(cities=cities)
