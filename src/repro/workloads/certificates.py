"""Synthetic certificate corpora.

Examples, integration tests, and the Table III timing harness need realistic
populations of CAs, server certificates, and chains.  This module builds them
deterministically: a configurable number of root/intermediate CAs, a set of
server certificates distributed across CAs, and helpers to pick victims for
revocation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.crypto.signing import KeyPair
from repro.pki.ca import CertificationAuthority, TrustStore
from repro.pki.certificate import CertificateChain


@dataclass
class CertificateCorpus:
    """A world of CAs and the server chains they issued."""

    authorities: List[CertificationAuthority]
    trust_store: TrustStore
    chains: List[CertificateChain]
    chains_by_ca: Dict[str, List[CertificateChain]] = field(default_factory=dict)

    def ca_public_keys(self) -> Dict[str, object]:
        """Issuer name -> Ed25519 public key for every modelled CA."""
        return {authority.name: authority.public_key for authority in self.authorities}

    def chain_for_domain(self, domain: str) -> Optional[CertificateChain]:
        """The chain whose leaf certifies ``domain``, if one was generated."""
        for chain in self.chains:
            if chain.leaf.subject == domain:
                return chain
        return None

    def random_chain(self, seed: int = 0) -> CertificateChain:
        """A seeded-deterministic pick from the generated chains."""
        return random.Random(seed).choice(self.chains)

    def authority_by_name(self, name: str) -> Optional[CertificationAuthority]:
        """Look up one of the corpus CAs by its issuer name."""
        for authority in self.authorities:
            if authority.name == name:
                return authority
        return None


def generate_corpus(
    ca_count: int = 3,
    domains_per_ca: int = 5,
    use_intermediates: bool = True,
    now: int = 1_400_000_000,
    seed: int = 11,
) -> CertificateCorpus:
    """Build ``ca_count`` CAs, each issuing ``domains_per_ca`` server chains.

    When ``use_intermediates`` is set, each root signs one intermediate CA and
    server certificates are issued by the intermediate, giving the 3-element
    chains the paper calls the most common case (§VII-D).
    """
    rng = random.Random(seed)
    authorities: List[CertificationAuthority] = []
    issuing: List[CertificationAuthority] = []
    trust_store = TrustStore()

    for index in range(ca_count):
        root = CertificationAuthority(f"Root-CA-{index}", key_seed=f"root-{index}-{seed}".encode())
        trust_store.add(root)
        authorities.append(root)
        if use_intermediates:
            intermediate = CertificationAuthority(
                f"Issuing-CA-{index}",
                key_seed=f"intermediate-{index}-{seed}".encode(),
                parent=root,
            )
            authorities.append(intermediate)
            issuing.append(intermediate)
        else:
            issuing.append(root)

    chains: List[CertificateChain] = []
    chains_by_ca: Dict[str, List[CertificateChain]] = {}
    tlds = ["com", "org", "net", "io", "ch"]
    for ca_index, authority in enumerate(issuing):
        for domain_index in range(domains_per_ca):
            domain = f"site{ca_index}-{domain_index}.{rng.choice(tlds)}"
            keys = KeyPair.generate(f"{domain}-{seed}".encode())
            chain = authority.issue_chain_for(domain, keys.public, now=now)
            chains.append(chain)
            chains_by_ca.setdefault(authority.name, []).append(chain)

    return CertificateCorpus(
        authorities=authorities,
        trust_store=trust_store,
        chains=chains,
        chains_by_ca=chains_by_ca,
    )
