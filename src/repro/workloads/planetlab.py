"""PlanetLab-style vantage points for the dissemination-speed experiment.

Fig. 5 of the paper measures download times from 80 PlanetLab nodes spread
across the world, each fetching five different revocation messages ten times
from Amazon CloudFront with caching disabled.  This module provides the
vantage-point set: 80 deterministic locations distributed over the CDN
regions roughly like the real PlanetLab deployment (weighted towards North
America and Europe, where most PlanetLab sites are hosted).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List

from repro.cdn.geography import GeoLocation, Region

#: Number of vantage points used in the paper's measurement.
PLANETLAB_NODE_COUNT = 80
#: Repetitions per (node, message) pair.
REPETITIONS_PER_NODE = 10

#: Share of PlanetLab sites per region (PlanetLab was university-hosted and
#: concentrated in North America and Europe).
PLANETLAB_REGION_SHARE: Dict[Region, float] = {
    Region.UNITED_STATES: 0.40,
    Region.EUROPE: 0.33,
    Region.HONG_KONG_SINGAPORE: 0.10,
    Region.JAPAN: 0.07,
    Region.SOUTH_AMERICA: 0.04,
    Region.AUSTRALIA: 0.03,
    Region.INDIA: 0.03,
}


@dataclass(frozen=True)
class VantagePoint:
    """One measurement node."""

    name: str
    location: GeoLocation


def generate_vantage_points(
    count: int = PLANETLAB_NODE_COUNT, seed: int = 5
) -> List[VantagePoint]:
    """Deterministically place ``count`` vantage points across the regions."""
    rng = random.Random(seed)
    nodes: List[VantagePoint] = []
    regions = list(PLANETLAB_REGION_SHARE)
    counts = {region: int(round(count * share)) for region, share in PLANETLAB_REGION_SHARE.items()}
    drift = count - sum(counts.values())
    counts[Region.UNITED_STATES] += drift
    index = 0
    for region in regions:
        for _ in range(counts[region]):
            nodes.append(
                VantagePoint(
                    name=f"planetlab-{index:03d}",
                    location=GeoLocation(region=region, distance_factor=rng.random()),
                )
            )
            index += 1
    return nodes
