"""Workload and dataset generators calibrated to the paper's §VII-A."""

from repro.workloads.certificates import CertificateCorpus, generate_corpus
from repro.workloads.planetlab import (
    PLANETLAB_NODE_COUNT,
    REPETITIONS_PER_NODE,
    VantagePoint,
    generate_vantage_points,
)
from repro.workloads.population import (
    DEFAULT_CLIENTS_PER_RA,
    TOTAL_CITIES,
    TOTAL_POPULATION,
    City,
    PopulationModel,
    generate_population,
)
from repro.workloads.revocation_trace import (
    AVERAGE_REVOCATIONS_PER_CRL,
    HEARTBLEED_WEEK,
    LARGEST_CRL_BYTES,
    LARGEST_CRL_ENTRIES,
    NUMBER_OF_CRLS,
    SERIAL_BYTES,
    TOTAL_REVOCATIONS,
    DailyRevocations,
    RevocationTrace,
    generate_trace,
    largest_crl_serials,
    serials_for_count,
)

__all__ = [
    "RevocationTrace",
    "DailyRevocations",
    "generate_trace",
    "serials_for_count",
    "largest_crl_serials",
    "TOTAL_REVOCATIONS",
    "NUMBER_OF_CRLS",
    "AVERAGE_REVOCATIONS_PER_CRL",
    "LARGEST_CRL_ENTRIES",
    "LARGEST_CRL_BYTES",
    "SERIAL_BYTES",
    "HEARTBLEED_WEEK",
    "PopulationModel",
    "City",
    "generate_population",
    "TOTAL_POPULATION",
    "TOTAL_CITIES",
    "DEFAULT_CLIENTS_PER_RA",
    "VantagePoint",
    "generate_vantage_points",
    "PLANETLAB_NODE_COUNT",
    "REPETITIONS_PER_NODE",
    "CertificateCorpus",
    "generate_corpus",
]
