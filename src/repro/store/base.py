"""The :class:`AuthenticatedStore` interface and shared sorted-leaf machinery.

An authenticated store holds ``(key, value)`` leaves in lexicographic key
order and commits to them with the sorted Merkle tree of
:mod:`repro.crypto.merkle` (paper §II/§III).  The interface splits RITM's
dictionary semantics from the hashing strategy: engines differ in *when* and
*how much* they rehash, never in *what* they commit to — every engine must
produce byte-identical roots and proofs for the same leaf set.

:class:`SortedLeafStore` is the shared concrete base: it owns the sorted
key/value arrays, batch validation, and proof construction, and asks the
engine for the current hash levels through one hook (:meth:`_hash_levels`).
"""

from __future__ import annotations

import bisect
from abc import ABC, abstractmethod
from typing import ClassVar, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.crypto.hashing import DEFAULT_DIGEST_SIZE, hash_leaf
from repro.crypto.merkle import (
    AbsenceProof,
    AuditStep,
    MembershipProof,
    PresenceProof,
    empty_root,
    encode_leaf,
)
from repro.errors import ProofError


class LeafKeysView(Sequence):
    """Lazy, read-only view of a store's sorted keys.

    Returned by :meth:`SortedLeafStore.keys` instead of a full tuple copy —
    dissemination sync and checkpoint paths call ``keys()`` per pull, which
    at web scale turned every pull into an O(N) allocation spike.  The view
    indexes straight into the engine's live key column, so it reflects
    later mutations; callers needing snapshot semantics wrap it in
    ``tuple()``/``list()`` (every in-repo caller either does so or consumes
    the view immediately).  Compares element-wise against any sized
    iterable, so differential assertions like ``a.keys() == b.keys()`` keep
    working across engines and against plain tuples.
    """

    __slots__ = ("_source",)

    def __init__(self, source: Sequence[bytes]) -> None:
        """Wrap the engine's live sorted-key column."""
        self._source = source

    def __len__(self) -> int:
        """Number of keys currently stored."""
        return len(self._source)

    def __getitem__(self, index):
        """Key at ``index`` (slices return tuples)."""
        if isinstance(index, slice):
            return tuple(
                self._source[i] for i in range(*index.indices(len(self._source)))
            )
        return self._source[index]

    def __iter__(self) -> Iterator[bytes]:
        """Iterate keys in sorted order straight off the column."""
        return iter(self._source)

    def __eq__(self, other: object) -> bool:
        """Element-wise comparison against any sized iterable of keys."""
        try:
            length = len(other)  # type: ignore[arg-type]
        except TypeError:
            return NotImplemented
        if length != len(self):
            return False
        return all(mine == theirs for mine, theirs in zip(self, other))

    __hash__ = None  # type: ignore[assignment]  # mutable view

    def __repr__(self) -> str:
        """Debugging representation showing the view length."""
        return f"<LeafKeysView of {len(self)} keys>"


class LeafItemsView(Sequence):
    """Lazy, read-only view of a store's sorted ``(key, value)`` leaves.

    Same contract as :class:`LeafKeysView`: indexes the engine's live
    columns without copying them, so snapshots must be taken explicitly
    with ``list()`` (as the dictionary checkpoint path already does).
    """

    __slots__ = ("_keys", "_values")

    def __init__(self, keys: Sequence[bytes], values: Sequence[bytes]) -> None:
        """Wrap the engine's live key and value columns."""
        self._keys = keys
        self._values = values

    def __len__(self) -> int:
        """Number of leaves currently stored."""
        return len(self._keys)

    def __getitem__(self, index):
        """Leaf pair at ``index`` (slices return tuples of pairs)."""
        if isinstance(index, slice):
            return tuple(
                (self._keys[i], self._values[i])
                for i in range(*index.indices(len(self._keys)))
            )
        return (self._keys[index], self._values[index])

    def __iter__(self) -> Iterator[Tuple[bytes, bytes]]:
        """Iterate leaf pairs in sorted key order."""
        return zip(self._keys, self._values)

    def __eq__(self, other: object) -> bool:
        """Element-wise comparison against any sized iterable of pairs."""
        try:
            length = len(other)  # type: ignore[arg-type]
        except TypeError:
            return NotImplemented
        if length != len(self):
            return False
        return all(mine == theirs for mine, theirs in zip(self, other))

    __hash__ = None  # type: ignore[assignment]  # mutable view

    def __repr__(self) -> str:
        """Debugging representation showing the view length."""
        return f"<LeafItemsView of {len(self)} leaves>"


class AuthenticatedStore(ABC):
    """Interface every Merkle-store engine implements.

    All mutation is insert-only (RITM dictionaries are append-only sets of
    revoked serials); ``insert_batch`` is the transactional path the
    dictionary layer uses for CA issuances, RA updates, and resyncs.
    """

    #: Registry name of the engine (``"naive"``, ``"incremental"``, ...).
    engine_name: ClassVar[str] = "abstract"

    @abstractmethod
    def insert(self, key: bytes, value: bytes) -> int:
        """Insert one leaf; returns its sorted index.  Raises on duplicates."""

    @abstractmethod
    def insert_batch(self, items: Iterable[Tuple[bytes, bytes]]) -> int:
        """Insert many leaves in one transaction; returns how many were added."""

    @abstractmethod
    def remove_batch(self, keys: Iterable[bytes]) -> int:
        """Remove stored leaves in one transaction; returns how many were removed.

        RITM dictionaries are append-only; this exists solely so a caller
        that staged a batch and then failed a commit check (e.g. a replica
        whose recomputed root does not match the CA-signed one) can roll the
        store back to its pre-batch state.  Raises :class:`ProofError` if
        any key is absent.
        """

    @abstractmethod
    def root(self) -> bytes:
        """Current root digest (empty-tree sentinel when there are no leaves)."""

    @abstractmethod
    def prove_presence(self, key: bytes) -> PresenceProof:
        """Audit path for a stored key; raises :class:`ProofError` if absent."""

    @abstractmethod
    def prove_absence(self, key: bytes) -> AbsenceProof:
        """Adjacency proof for a missing key; raises if the key is present."""

    def prove(self, key: bytes) -> MembershipProof:
        """Return a presence proof if the key is stored, else an absence proof."""
        if key in self:
            return self.prove_presence(key)
        return self.prove_absence(key)

    @abstractmethod
    def get(self, key: bytes) -> Optional[bytes]:
        """Value stored under ``key``, or ``None``."""

    @abstractmethod
    def keys(self) -> Sequence[bytes]:
        """All keys in sorted order."""

    def items(self) -> Iterable[Tuple[bytes, bytes]]:
        """All ``(key, value)`` leaves in sorted key order.

        The default derives the pairs from :meth:`keys` and :meth:`get`;
        engines with direct access to their leaf arrays override it (and may
        return a lazy view).  Snapshot/checkpoint callers that need the leaf
        set frozen at call time materialise with ``list()``.
        """
        for key in self.keys():
            value = self.get(key)
            assert value is not None  # keys() only returns stored keys
            yield key, value

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Release any persistent resources held by the engine.

        Purely in-memory engines have nothing to release, so the default is
        a no-op.  Engines with real I/O (WAL file handles, mmap regions)
        override this; after ``close()`` the store must not be mutated.
        Closing twice is always safe.
        """

    def __enter__(self) -> "AuthenticatedStore":
        """Context-manager support: ``with create_store("durable") as s:``."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Close the engine when the ``with`` block exits."""
        self.close()

    @abstractmethod
    def __len__(self) -> int: ...

    @abstractmethod
    def __contains__(self, key: bytes) -> bool: ...


class SortedLeafStore(AuthenticatedStore):
    """Shared base for engines that keep leaves in sorted Python lists.

    Subclasses implement the hashing strategy by overriding
    :meth:`_hash_levels` (and the mutators); everything position- and
    proof-related lives here so the proof format cannot drift between
    engines.
    """

    def __init__(self, digest_size: int = DEFAULT_DIGEST_SIZE) -> None:
        self._digest_size = digest_size
        self._keys: List[bytes] = []
        self._values: List[bytes] = []

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key: bytes) -> bool:
        return self._find(key) is not None

    @property
    def digest_size(self) -> int:
        """The digest truncation (bytes) every hash in this store uses."""
        return self._digest_size

    def keys(self) -> Sequence[bytes]:
        """All stored keys in lexicographic order, as a lazy read-only view.

        The view tracks the live store (O(1) to obtain, no copy); take an
        explicit ``tuple()`` for snapshot semantics across mutations.
        """
        return LeafKeysView(self._keys)

    def get(self, key: bytes) -> Optional[bytes]:
        """The value stored under ``key``, or ``None`` when absent."""
        index = self._find(key)
        return None if index is None else self._values[index]

    def items(self) -> Sequence[Tuple[bytes, bytes]]:
        """All ``(key, value)`` leaves as a lazy read-only view.

        Like :meth:`keys`, the view tracks the live store; snapshot and
        checkpoint callers materialise it with ``list()``.
        """
        return LeafItemsView(self._keys, self._values)

    def root(self) -> bytes:
        """The current root digest (empty-tree sentinel with no leaves)."""
        if not self._keys:
            return empty_root(self._digest_size)
        return self._hash_levels()[-1][0]

    # -- proofs ------------------------------------------------------------

    def prove_presence(self, key: bytes) -> PresenceProof:
        """Audit path for a stored ``key``; raises :class:`ProofError` if absent."""
        index = self._find(key)
        if index is None:
            raise ProofError(f"key {key.hex()} is not in the tree")
        return self._presence_proof_at(index)

    def prove_absence(self, key: bytes) -> AbsenceProof:
        """Adjacency proof that ``key`` is not stored; raises if it is.

        One bisect serves both the presence check and the neighbour lookup.
        """
        size = len(self._keys)
        index = bisect.bisect_left(self._keys, key)
        if index < size and self._keys[index] == key:
            raise ProofError(f"key {key.hex()} is present; cannot prove absence")
        if size == 0:
            return AbsenceProof(key=key, tree_size=0)
        left = self._presence_proof_at(index - 1) if index > 0 else None
        right = self._presence_proof_at(index) if index < size else None
        return AbsenceProof(key=key, tree_size=size, left=left, right=right)

    # -- mutation ----------------------------------------------------------

    def remove_batch(self, keys: Iterable[bytes]) -> int:
        """Remove ``keys`` in one transaction (rollback support); see the ABC."""
        targets = sorted(set(keys))
        if not targets:
            return 0
        for key in targets:
            if self._find(key) is None:
                raise ProofError(f"key {key.hex()} is not in the tree; cannot remove")
        first_dirty = bisect.bisect_left(self._keys, targets[0])
        self._prune_leaves(set(targets), first_dirty)
        return len(targets)

    # -- engine hooks ------------------------------------------------------

    @abstractmethod
    def _hash_levels(self) -> List[List[bytes]]:
        """Hash levels bottom-up; ``[0]`` is the leaf-hash row, ``[-1]`` has
        length one.  Only called when the store is non-empty."""

    @abstractmethod
    def _prune_leaves(self, target_set: set, first_dirty: int) -> None:
        """Drop every leaf whose key is in ``target_set`` (all present;
        ``first_dirty`` is the smallest affected leaf index) and repair the
        engine's hash state."""

    # -- shared internals --------------------------------------------------

    def _find(self, key: bytes) -> Optional[int]:
        index = bisect.bisect_left(self._keys, key)
        if index < len(self._keys) and self._keys[index] == key:
            return index
        return None

    def _leaf_hash(self, key: bytes, value: bytes) -> bytes:
        return hash_leaf(encode_leaf(key, value), self._digest_size)

    def _insertion_point(self, key: bytes) -> int:
        """Sorted index for a new key; raises :class:`ProofError` on duplicates."""
        index = bisect.bisect_left(self._keys, key)
        if index < len(self._keys) and self._keys[index] == key:
            raise ProofError(f"duplicate key {key.hex()} inserted into sorted tree")
        return index

    def _prepare_batch(
        self, items: Iterable[Tuple[bytes, bytes]]
    ) -> List[Tuple[bytes, bytes]]:
        """Sort a batch and reject duplicates (within it or against the store)."""
        batch = sorted(items, key=lambda item: item[0])
        previous: Optional[bytes] = None
        for key, _ in batch:
            if key == previous:
                raise ProofError(f"duplicate key {key.hex()} within one batch")
            if self._find(key) is not None:
                raise ProofError(f"duplicate key {key.hex()} inserted into sorted tree")
            previous = key
        return batch

    def _merge_into(
        self,
        batch: Sequence[Tuple[bytes, bytes]],
        leaf_hashes: Optional[List[bytes]] = None,
    ) -> int:
        """One-pass sort-merge of a prepared batch into the leaf arrays.

        Replaces ``self._keys`` / ``self._values`` (and, when given, extends
        the cached ``leaf_hashes`` row in place) without any per-element
        ``list.insert``.  Returns the index of the first merged element —
        the leftmost position whose hash ancestry changed.
        """
        old_keys, old_values = self._keys, self._values
        first_dirty = bisect.bisect_left(old_keys, batch[0][0])
        merged_keys: List[bytes] = old_keys[:first_dirty]
        merged_values: List[bytes] = old_values[:first_dirty]
        merged_hashes: Optional[List[bytes]] = (
            leaf_hashes[:first_dirty] if leaf_hashes is not None else None
        )
        i, j = first_dirty, 0
        n, m = len(old_keys), len(batch)
        while i < n and j < m:
            if old_keys[i] < batch[j][0]:
                merged_keys.append(old_keys[i])
                merged_values.append(old_values[i])
                if merged_hashes is not None:
                    merged_hashes.append(leaf_hashes[i])
                i += 1
            else:
                key, value = batch[j]
                merged_keys.append(key)
                merged_values.append(value)
                if merged_hashes is not None:
                    merged_hashes.append(self._leaf_hash(key, value))
                j += 1
        merged_keys.extend(old_keys[i:])
        merged_values.extend(old_values[i:])
        if merged_hashes is not None:
            merged_hashes.extend(leaf_hashes[i:])
        for key, value in batch[j:]:
            merged_keys.append(key)
            merged_values.append(value)
            if merged_hashes is not None:
                merged_hashes.append(self._leaf_hash(key, value))
        self._keys = merged_keys
        self._values = merged_values
        if leaf_hashes is not None:
            leaf_hashes[:] = merged_hashes
        return first_dirty

    def _presence_proof_at(self, index: int) -> PresenceProof:
        levels = self._hash_levels()
        path: List[AuditStep] = []
        node_index = index
        for level in levels[:-1]:
            sibling_index = node_index ^ 1
            if sibling_index < len(level):
                path.append(
                    AuditStep(
                        sibling=level[sibling_index],
                        sibling_is_left=sibling_index < node_index,
                    )
                )
            # When the node is the promoted odd node it has no sibling at this
            # level; it simply carries up, so no audit step is emitted.
            node_index //= 2
        return PresenceProof(
            key=self._keys[index],
            value=self._values[index],
            leaf_index=index,
            tree_size=len(self._keys),
            path=tuple(path),
        )
