"""The incremental engine: cached hash levels, suffix-only recomputation.

The tree shape is fixed by the proof format (pair adjacent nodes, promote
the odd node), which makes internal node hashes *positional*: inserting a
leaf at index ``i`` shifts every later leaf by one, so every internal node
covering a shifted leaf re-pairs.  Within that constraint this engine does
the minimum work per mutation:

* the leaf-hash row is cached, so existing leaves are never re-encoded or
  rehashed — only the new leaves are hashed;
* at every level only the *dirty suffix* (nodes at or right of the
  insertion point's ancestor) is recomputed; nodes left of it are reused
  from the cache;
* an **append** — a key sorting after every stored key, e.g. sequentially
  allocated serials — dirties a single right-edge path and costs
  ``O(log N)`` hashes;
* a **batch** is applied with one sort-merge pass (no per-element
  ``list.insert``) followed by a single suffix recomputation from the
  leftmost merged position, so ``B`` new serials cost one pass over the
  affected suffix instead of ``B`` rebuilds.

Because the levels are always current, roots and proofs are served straight
from the cache with zero hashing.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.crypto.hashing import DEFAULT_DIGEST_SIZE, hash_node
from repro.store.base import SortedLeafStore


class IncrementalMerkleStore(SortedLeafStore):
    """A sorted Merkle tree that keeps its hash levels fresh across mutations."""

    engine_name = "incremental"

    def __init__(self, digest_size: int = DEFAULT_DIGEST_SIZE) -> None:
        super().__init__(digest_size)
        #: Always-current hash levels; ``[0]`` is the leaf-hash row.
        self._levels: List[List[bytes]] = []

    # -- mutation ----------------------------------------------------------

    def insert(self, key: bytes, value: bytes) -> int:
        """Insert one leaf and repair the cached levels from its position."""
        index = self._insertion_point(key)
        self._keys.insert(index, key)
        self._values.insert(index, value)
        if not self._levels:
            self._levels = [[self._leaf_hash(key, value)]]
        else:
            self._levels[0].insert(index, self._leaf_hash(key, value))
            self._recompute_from(index)
        return index

    def insert_batch(self, items: Iterable[Tuple[bytes, bytes]]) -> int:
        """Sort-merge a batch into the leaf arrays, then repair levels once."""
        batch = self._prepare_batch(items)
        if not batch:
            return 0
        return self._apply_prepared_batch(batch)

    def _apply_prepared_batch(self, batch: List[Tuple[bytes, bytes]]) -> int:
        """Merge an already-validated, sorted batch and repair the levels.

        Split out of :meth:`insert_batch` so engines that interpose between
        validation and application (the durable engine logs the prepared
        batch to its WAL first) can reuse the merge without re-validating.
        """
        if not self._levels:
            self._levels = [[]]
        first_dirty = self._merge_into(batch, leaf_hashes=self._levels[0])
        self._recompute_from(first_dirty)
        return len(batch)

    def _prune_leaves(self, target_set, first_dirty: int) -> None:
        keys, values, leaf_hashes = self._keys, self._values, self._levels[0]
        kept_keys = keys[:first_dirty]
        kept_values = values[:first_dirty]
        kept_hashes = leaf_hashes[:first_dirty]
        for index in range(first_dirty, len(keys)):
            if keys[index] not in target_set:
                kept_keys.append(keys[index])
                kept_values.append(values[index])
                kept_hashes.append(leaf_hashes[index])
        self._keys, self._values = kept_keys, kept_values
        if not kept_keys:
            self._levels = []
            return
        self._levels[0] = kept_hashes
        self._recompute_from(first_dirty)

    # -- hashing -----------------------------------------------------------

    def _hash_levels(self) -> List[List[bytes]]:
        return self._levels

    def _recompute_from(self, start: int) -> None:
        """Recompute the dirty suffix of every level above the leaf row.

        ``start`` is the leftmost leaf index whose hash ancestry changed.
        Nodes strictly left of ``start >> l`` at level ``l`` cover only
        untouched, unshifted leaves and are reused from the cache.
        """
        levels = self._levels
        digest_size = self._digest_size
        child = levels[0]
        level_index = 1
        while len(child) > 1:
            parent_length = (len(child) + 1) // 2
            if level_index == len(levels):
                levels.append([])
            parent = levels[level_index]
            first = start >> 1
            del parent[first:]
            child_length = len(child)
            for node in range(first, parent_length):
                left = node * 2
                if left + 1 < child_length:
                    parent.append(hash_node(child[left], child[left + 1], digest_size))
                else:
                    # Odd node is promoted unchanged to the next level.
                    parent.append(child[left])
            child = parent
            start = first
            level_index += 1
        del levels[level_index:]
