"""The full-rebuild engine: simple, obviously correct, deliberately slow.

This is the seed implementation of the sorted Merkle tree (formerly
``repro.crypto.merkle.SortedMerkleTree``), kept as the differential-testing
oracle for every other engine.  Mutations only touch the sorted leaf arrays
and mark the hash levels dirty; the first root or proof request after a
mutation rehashes all ``N`` leaves and rebuilds every level, so a single
revocation on an ``N``-entry dictionary costs ``Θ(N)`` hashes.

The one thing it does *not* do naively anymore is batching:
:meth:`insert_batch` merges the batch with one sort-merge pass instead of
``B`` separate ``O(N)`` ``list.insert`` shifts, and the subsequent rebuild
is paid once per batch rather than once per element.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.crypto.hashing import DEFAULT_DIGEST_SIZE, hash_node
from repro.store.base import SortedLeafStore


class NaiveMerkleStore(SortedLeafStore):
    """A Merkle tree over key-sorted leaves, rebuilt from scratch on demand.

    The hash levels are rebuilt lazily the first time the root (or a proof)
    is requested after a modification, so consecutive mutations pay for a
    single rebuild.
    """

    engine_name = "naive"

    def __init__(self, digest_size: int = DEFAULT_DIGEST_SIZE) -> None:
        super().__init__(digest_size)
        self._levels: List[List[bytes]] = []
        self._dirty = True

    # -- mutation ----------------------------------------------------------

    def insert(self, key: bytes, value: bytes) -> int:
        """Insert a leaf, keeping keys sorted and unique.

        Returns the leaf index at which the key now resides.  Raises
        :class:`~repro.errors.ProofError` if the key is already present
        (RITM dictionaries never revoke the same serial twice).
        """
        index = self._insertion_point(key)
        self._keys.insert(index, key)
        self._values.insert(index, value)
        self._dirty = True
        return index

    def insert_batch(self, items: Iterable[Tuple[bytes, bytes]]) -> int:
        """Merge many leaves in one pass; the hash levels are rebuilt only once."""
        batch = self._prepare_batch(items)
        if not batch:
            return 0
        self._merge_into(batch)
        self._dirty = True
        return len(batch)

    def _prune_leaves(self, target_set, first_dirty: int) -> None:
        kept = [
            (key, value)
            for key, value in zip(self._keys, self._values)
            if key not in target_set
        ]
        self._keys = [key for key, _ in kept]
        self._values = [value for _, value in kept]
        self._dirty = True

    # -- hashing -----------------------------------------------------------

    def _hash_levels(self) -> List[List[bytes]]:
        if self._dirty:
            self._rebuild()
        return self._levels

    def _rebuild(self) -> None:
        if not self._keys:
            self._levels = []
            self._dirty = False
            return
        level = [
            self._leaf_hash(key, value)
            for key, value in zip(self._keys, self._values)
        ]
        levels = [level]
        digest_size = self._digest_size
        while len(level) > 1:
            nxt = []
            for i in range(0, len(level) - 1, 2):
                nxt.append(hash_node(level[i], level[i + 1], digest_size))
            if len(level) % 2 == 1:
                # Odd node is promoted unchanged to the next level.
                nxt.append(level[-1])
            level = nxt
            levels.append(level)
        self._levels = levels
        self._dirty = False
