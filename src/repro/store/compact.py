"""The compact engine: flat-buffer leaf arenas and level-vectorized hashing.

:class:`IncrementalMerkleStore` already does the minimum *hashing* work per
mutation, but it pays Python-object overhead everywhere else: every leaf key,
leaf value, and internal node digest is its own ``bytes`` object inside a
``list``, so a 10M-leaf dictionary costs hundreds of bytes per leaf and every
level pass runs one interpreted ``hash_node`` call (argument packing, digest
truncation, bounds checks) per node.

This engine removes the objects, not the hashes:

* **Leaf arenas** — keys and values live in one contiguous ``bytearray``
  each (:class:`_ByteColumn`).  RITM keys are fixed-width serial numbers, so
  the arena is digest-stride indexed (``offset = index * width``) with no
  per-leaf pointers; columns transparently fall back to an offset-indexed
  ragged layout the first time a differently-sized entry appears.
* **Hash planes** — each tree level is a single ``bytearray`` of
  concatenated ``digest_size``-strided node digests.  A level pass snapshots
  the dirty suffix once and runs a tight ``b"".join`` comprehension of
  ``sha256(prefix + row[k:k+2*ds])`` calls: one C-level hash per node with
  no intermediate node objects and no per-node Python function dispatch.
* **Lazy suffix recompute** — mutations only splice the leaf plane and lower
  a dirty watermark; the next ``root()``/proof call settles all levels in a
  single bottom-up sweep from the watermark.  Appends stay ``O(log N)``
  hashes, mid-tree inserts rehash only the dirty suffix, and a burst of
  mutations between reads shares one settle.
* **Proofs are slice reads** — audit-path siblings come straight out of the
  level planes as ``level_buf[i*ds:(i+1)*ds]`` copies, so returned proofs
  never alias live buffers and later mutations cannot corrupt them.

The tree *shape* is untouched: the engine subclasses
:class:`SortedLeafStore`, whose proof construction, batch validation, and
bisect-based key index operate on the arenas through the ordinary sequence
protocol.  Roots and proofs are byte-identical to every other engine
(``tests/store/test_compact_store.py`` enforces this differentially).
"""

from __future__ import annotations

import bisect
from array import array
from itertools import accumulate, chain
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

try:  # the raw C constructor skips hashlib's wrapper layer (~20% per call)
    from _sha256 import sha256 as _sha256
except ImportError:  # pragma: no cover - platform without the builtin module
    from hashlib import sha256 as _sha256

from repro.crypto.hashing import DEFAULT_DIGEST_SIZE, LEAF_PREFIX, NODE_PREFIX
from repro.crypto.merkle import empty_root, encode_leaf
from repro.store.base import SortedLeafStore


class _ByteColumn(Sequence):
    """A sorted column of byte strings packed into one contiguous arena.

    Starts in *uniform* mode: the first entry fixes the stride and every
    item is addressed as ``buf[i*width : (i+1)*width]`` — zero per-item
    metadata, which is what makes 10M fixed-width serials cheap.  The first
    differently-sized entry triggers a one-time conversion to *ragged* mode
    (a parallel ``array('I')`` of lengths plus lazily rebuilt prefix-sum
    offsets), preserving correctness for arbitrary keys at a small per-item
    cost.  Supports exactly the sequence protocol ``bisect`` and
    :class:`SortedLeafStore` rely on; ``__getitem__`` always returns
    independent ``bytes`` copies.
    """

    __slots__ = ("_buf", "_count", "_width", "_lens", "_offs")

    def __init__(self) -> None:
        """Create an empty column; the stride is learned from the first item."""
        self._buf = bytearray()
        self._count = 0
        self._width: Optional[int] = None  # None until the first item
        self._lens: Optional[array] = None  # non-None once ragged
        self._offs: Optional[array] = None  # lazy prefix sums (ragged mode)

    # -- sequence protocol -------------------------------------------------

    def __len__(self) -> int:
        """Number of items stored."""
        return self._count

    def __getitem__(self, index):
        """Item at ``index`` as an independent ``bytes`` copy."""
        if isinstance(index, slice):
            return tuple(self[i] for i in range(*index.indices(self._count)))
        if index < 0:
            index += self._count
        if not 0 <= index < self._count:
            raise IndexError("column index out of range")
        if self._lens is None:
            width = self._width or 0
            offset = index * width
            return bytes(self._buf[offset : offset + width])
        offsets = self._offsets()
        return bytes(self._buf[offsets[index] : offsets[index + 1]])

    def __iter__(self):
        """Iterate items in order without repeated offset arithmetic."""
        buf = self._buf
        if self._lens is None:
            width = self._width or 0
            if width == 0:
                for _ in range(self._count):
                    yield b""
                return
            for offset in range(0, self._count * width, width):
                yield bytes(buf[offset : offset + width])
            return
        offsets = self._offsets()
        for index in range(self._count):
            yield bytes(buf[offsets[index] : offsets[index + 1]])

    # -- mutation ----------------------------------------------------------

    def insert_at(self, index: int, item: bytes) -> None:
        """Splice one item before position ``index`` (a single ``memmove``)."""
        self._fit(item)
        if self._lens is None:
            offset = index * self._width  # type: ignore[operator]
            self._buf[offset:offset] = item
        else:
            offset = self._offsets()[index]
            self._buf[offset:offset] = item
            self._lens.insert(index, len(item))
            self._offs = None
        self._count += 1

    def merge(self, positions: Sequence[int], items: Sequence[bytes]) -> None:
        """Splice sorted ``items`` before the old indices ``positions``.

        ``positions`` must be non-decreasing (computed against the
        pre-merge column) and aligned with ``items``; the arena is rebuilt
        with one gap-slice join instead of per-item splices.
        """
        for item in items:
            self._fit(item)
            if self._lens is not None:
                break
        buf = self._buf
        parts: List[bytes] = []
        previous = 0
        if self._lens is None:
            width = self._width or 0
            for position, item in zip(positions, items):
                offset = position * width
                parts.append(buf[previous:offset])
                parts.append(item)
                previous = offset
            parts.append(buf[previous:])
            self._buf = bytearray(b"".join(parts))
        else:
            offsets = self._offsets()
            new_lens = array("I")
            consumed = 0
            for position, item in zip(positions, items):
                offset = offsets[position]
                parts.append(buf[previous:offset])
                new_lens.extend(self._lens[consumed:position])
                consumed = position
                parts.append(item)
                new_lens.append(len(item))
                previous = offset
            parts.append(buf[previous:])
            new_lens.extend(self._lens[consumed:])
            self._buf = bytearray(b"".join(parts))
            self._lens = new_lens
            self._offs = None
        self._count += len(items)

    def append_bulk(self, items: Sequence[bytes]) -> None:
        """Append pre-sorted ``items`` that all sort after the current tail.

        The bootstrap/sequential-issuance fast path: one arena extend, no
        gap-slice bookkeeping.
        """
        for item in items:
            self._fit(item)
            if self._lens is not None:
                break
        self._buf += b"".join(items)
        if self._lens is not None:
            self._lens.extend([len(item) for item in items])
            self._offs = None
        self._count += len(items)

    def keep_runs(self, runs: Sequence[Tuple[int, int]], new_count: int) -> None:
        """Rebuild the arena keeping only the index ranges in ``runs``.

        ``runs`` are disjoint, ascending ``(start, stop)`` half-open index
        intervals whose lengths sum to ``new_count``.
        """
        buf = self._buf
        parts: List[bytes] = []
        if self._lens is None:
            width = self._width or 0
            for start, stop in runs:
                parts.append(buf[start * width : stop * width])
            self._buf = bytearray(b"".join(parts))
        else:
            offsets = self._offsets()
            new_lens = array("I")
            for start, stop in runs:
                parts.append(buf[offsets[start] : offsets[stop]])
                new_lens.extend(self._lens[start:stop])
            self._buf = bytearray(b"".join(parts))
            self._lens = new_lens
            self._offs = None
        self._count = new_count

    # -- accounting --------------------------------------------------------

    @property
    def nbytes(self) -> int:
        """Bytes held by the arena plus ragged-mode length/offset metadata."""
        total = len(self._buf)
        if self._lens is not None:
            total += self._lens.itemsize * len(self._lens)
        if self._offs is not None:
            total += self._offs.itemsize * len(self._offs)
        return total

    @property
    def is_uniform(self) -> bool:
        """Whether the column is still in fixed-stride (uniform) mode."""
        return self._lens is None

    # -- internals ---------------------------------------------------------

    def _fit(self, item: bytes) -> None:
        """Learn the stride from the first item; go ragged on a mismatch."""
        if self._width is None:
            self._width = len(item)
        elif self._lens is None and len(item) != self._width:
            self._lens = array("I", [self._width]) * self._count
            self._offs = None

    def _offsets(self) -> array:
        """Prefix-sum offsets for ragged mode, rebuilt lazily after mutation."""
        if self._offs is None:
            assert self._lens is not None
            self._offs = array("Q", accumulate(chain((0,), self._lens)))
        return self._offs


class _PlaneView(Sequence):
    """Read-only node-digest view over one flat hash-level plane.

    Adapts a ``digest_size``-strided ``bytearray`` to the sequence protocol
    :meth:`SortedLeafStore._presence_proof_at` walks; every access returns
    an independent ``bytes`` copy, so proofs never alias the live plane.
    """

    __slots__ = ("_buf", "_digest_size")

    def __init__(self, buf: bytearray, digest_size: int) -> None:
        """Wrap ``buf`` (concatenated node digests) with stride ``digest_size``."""
        self._buf = buf
        self._digest_size = digest_size

    def __len__(self) -> int:
        """Number of node digests in the plane."""
        return len(self._buf) // self._digest_size

    def __getitem__(self, index):
        """Node digest at ``index`` as an independent ``bytes`` copy."""
        size = len(self)
        if isinstance(index, slice):
            return tuple(self[i] for i in range(*index.indices(size)))
        if index < 0:
            index += size
        if not 0 <= index < size:
            raise IndexError("plane index out of range")
        offset = index * self._digest_size
        return bytes(self._buf[offset : offset + self._digest_size])


class CompactMerkleStore(SortedLeafStore):
    """A sorted Merkle tree stored as flat byte planes with lazy hashing.

    See the module docstring for the layout.  The engine keeps a *dirty
    watermark* — the leftmost leaf index whose hash ancestry changed since
    the planes were last settled — and recomputes each level's dirty suffix
    in one vectorized pass on the next read.  All validation, proof
    construction, and ordering logic is inherited from
    :class:`SortedLeafStore`, operating on the arenas through the sequence
    protocol, so the proof format cannot drift from the other engines.
    """

    engine_name = "compact"

    def __init__(self, digest_size: int = DEFAULT_DIGEST_SIZE) -> None:
        """Create an empty store hashing with ``digest_size``-byte digests."""
        super().__init__(digest_size)
        self._keys: _ByteColumn = _ByteColumn()  # type: ignore[assignment]
        self._values: _ByteColumn = _ByteColumn()  # type: ignore[assignment]
        #: ``_planes[l]`` is level ``l``'s concatenated node digests;
        #: ``_planes[0]`` (the leaf-hash row) is always current, planes above
        #: it are only valid left of the watermark until the next settle.
        self._planes: List[bytearray] = [bytearray()]
        #: Leftmost leaf index whose ancestry is stale; ``None`` == settled.
        self._dirty_from: Optional[int] = None

    # -- mutation ----------------------------------------------------------

    def insert(self, key: bytes, value: bytes) -> int:
        """Insert one leaf: three arena splices and a lowered watermark."""
        index = self._insertion_point(key)
        digest_size = self._digest_size
        leaf = _sha256(LEAF_PREFIX + encode_leaf(key, value)).digest()[:digest_size]
        self._keys.insert_at(index, key)
        self._values.insert_at(index, value)
        offset = index * digest_size
        self._planes[0][offset:offset] = leaf
        self._mark_dirty(index)
        return index

    def insert_batch(self, items: Iterable[Tuple[bytes, bytes]]) -> int:
        """Validate a batch, then splice and hash it in bulk."""
        batch = self._prepare_batch(items)
        if not batch:
            return 0
        return self._apply_prepared_batch(batch)

    def _apply_prepared_batch(self, batch: List[Tuple[bytes, bytes]]) -> int:
        """Merge an already-validated, sorted batch into the flat planes.

        Mirrors :meth:`IncrementalMerkleStore._apply_prepared_batch` so WAL
        overlays can interpose between validation and application.  One
        bisect pass computes every insertion position against the pre-merge
        keys; one comprehension hashes all new leaves; each arena is rebuilt
        with a single gap-slice join.
        """
        digest_size = self._digest_size
        keys = self._keys
        count = len(keys)
        sha, prefix = _sha256, LEAF_PREFIX
        if count == 0 or batch[0][0] > keys[count - 1]:
            # Every batch key sorts after the stored tail (bootstrap builds
            # and sequentially allocated serials): plain arena appends.
            self._planes[0] += b"".join(
                [
                    sha(prefix + encode_leaf(key, value)).digest()[:digest_size]
                    for key, value in batch
                ]
            )
            self._keys.append_bulk([key for key, _ in batch])
            self._values.append_bulk([value for _, value in batch])
            self._mark_dirty(count)
            return len(batch)
        positions: List[int] = []
        low = 0
        for key, _ in batch:
            low = bisect.bisect_left(keys, key, low)
            positions.append(low)
        digests = b"".join(
            [
                sha(prefix + encode_leaf(key, value)).digest()[:digest_size]
                for key, value in batch
            ]
        )
        plane0 = self._planes[0]
        parts: List[bytes] = []
        previous = 0
        for number, position in enumerate(positions):
            offset = position * digest_size
            parts.append(plane0[previous:offset])
            parts.append(digests[number * digest_size : (number + 1) * digest_size])
            previous = offset
        parts.append(plane0[previous:])
        self._planes[0] = bytearray(b"".join(parts))
        self._keys.merge(positions, [key for key, _ in batch])
        self._values.merge(positions, [value for _, value in batch])
        self._mark_dirty(positions[0])
        return len(batch)

    def _prune_leaves(self, target_set: set, first_dirty: int) -> None:
        """Drop the targeted leaves by rebuilding the arenas from kept runs."""
        keys = self._keys
        total = len(keys)
        runs: List[Tuple[int, int]] = [(0, first_dirty)] if first_dirty else []
        kept = first_dirty
        run_start: Optional[int] = None
        for index in range(first_dirty, total):
            if keys[index] in target_set:
                if run_start is not None:
                    runs.append((run_start, index))
                    kept += index - run_start
                    run_start = None
            elif run_start is None:
                run_start = index
        if run_start is not None:
            runs.append((run_start, total))
            kept += total - run_start
        self._keys.keep_runs(runs, kept)
        self._values.keep_runs(runs, kept)
        digest_size = self._digest_size
        plane0 = self._planes[0]
        self._planes[0] = bytearray(
            b"".join(
                [plane0[start * digest_size : stop * digest_size] for start, stop in runs]
            )
        )
        if kept == 0:
            del self._planes[1:]
            self._dirty_from = None
            return
        self._mark_dirty(first_dirty)

    # -- hashing -----------------------------------------------------------

    def root(self) -> bytes:
        """Current root digest, served straight off the settled top plane."""
        if not len(self._keys):
            return empty_root(self._digest_size)
        self._settle()
        return bytes(self._planes[-1])

    def _hash_levels(self) -> List[Sequence[bytes]]:
        """Settle the planes, then expose them through per-level views."""
        self._settle()
        digest_size = self._digest_size
        return [_PlaneView(plane, digest_size) for plane in self._planes]

    def _mark_dirty(self, index: int) -> None:
        """Lower the dirty watermark to ``index``."""
        if self._dirty_from is None or index < self._dirty_from:
            self._dirty_from = index

    def _settle(self) -> None:
        """Recompute every level's dirty suffix in one bottom-up sweep.

        At level ``l`` the first stale parent is ``watermark >> l``; the
        dirty child suffix is snapshotted once as immutable ``bytes`` and
        hashed pairwise in a single comprehension (the trailing odd child,
        if any, is promoted unchanged).  Slice-assigning the result grows or
        shrinks each plane to exactly its new node count.
        """
        start = self._dirty_from
        if start is None:
            return
        self._dirty_from = None
        count = len(self._keys)
        planes = self._planes
        if count == 0:
            del planes[1:]
            return
        digest_size = self._digest_size
        pair_stride = digest_size * 2
        sha, prefix = _sha256, NODE_PREFIX
        child = planes[0]
        child_count = count
        level = 1
        while child_count > 1:
            parent_count = (child_count + 1) >> 1
            first = start >> level
            if level == len(planes):
                planes.append(bytearray())
            parent = planes[level]
            child_base = (first << 1) * digest_size
            row = bytes(child[child_base:])
            paired_end = (child_count - (child_count & 1)) * digest_size - child_base
            out = b"".join(
                [
                    sha(prefix + row[offset : offset + pair_stride]).digest()[:digest_size]
                    for offset in range(0, paired_end, pair_stride)
                ]
            )
            if child_count & 1:
                out += row[paired_end : paired_end + digest_size]
            parent[first * digest_size :] = out
            child = parent
            child_count = parent_count
            level += 1
        del planes[level:]

    # -- accounting --------------------------------------------------------

    def memory_usage(self) -> Dict[str, int]:
        """Byte accounting of the flat buffers (keys, values, hash planes).

        Settles first so the plane total reflects the full tree; used by the
        scaling benchmarks and ``docs/STORAGE.md`` memory/leaf numbers.
        """
        self._settle()
        keys_bytes = self._keys.nbytes
        values_bytes = self._values.nbytes
        plane_bytes = sum(len(plane) for plane in self._planes)
        return {
            "keys_bytes": keys_bytes,
            "values_bytes": values_bytes,
            "plane_bytes": plane_bytes,
            "total_bytes": keys_bytes + values_bytes + plane_bytes,
        }
