"""The durable engine: write-ahead-logged Merkle persistence with snapshots.

:class:`DurableMerkleStore` extends the incremental engine with crash-safe
persistence so a restarted process recovers **byte-identical roots and
proofs** without re-downloading anything:

* every mutation (``insert``/``insert_batch``/``remove_batch``) is appended
  to an append-only **write-ahead log** *before* it touches the in-memory
  tree.  Records are length-prefixed and CRC-checksummed, so recovery can
  replay a prefix of the history and cleanly discard a torn tail — a crash
  at (or inside) any record leaves a recoverable log;
* every ``snapshot_every`` records (and on demand via :meth:`snapshot`) the
  engine writes a **snapshot**: a pinned-format, checksummed dump of the
  sorted leaves plus the sequence number of the last record it covers.
  Snapshots are written to a temp file and atomically renamed, then the WAL
  is reset; a crash between the two steps is harmless because replay skips
  records whose sequence number the snapshot already covers;
* opening a :class:`DurableMerkleStore` on an existing directory **recovers**
  by loading the snapshot (if any) and replaying the WAL suffix.

The persistence machinery lives in :class:`WALOverlay`, a mixin layered
over any in-memory :class:`~repro.store.base.SortedLeafStore` engine: the
overlay validates, logs, and then delegates the actual mutation to the
wrapped engine via ``super()``.  Two compositions are registered —
``durable`` (over :class:`~repro.store.incremental.IncrementalMerkleStore`)
and ``durable-compact`` (over
:class:`~repro.store.compact.CompactMerkleStore`, the flat-buffer core).
The hashing strategy is inherited unchanged from the wrapped engine, so
both stay byte-identical to every other engine for the same leaf set — the
differential suite in ``tests/store/`` proves it.  File formats, the
recovery algorithm, and tuning knobs are documented in ``docs/STORAGE.md``.

When no directory is given the engine persists into a private temporary
directory that is deleted on :meth:`close` — that keeps ``engine="durable"``
usable through every existing knob (``RITMConfig.store_engine``, scenario
configs, CLI ``--engine``, benchmarks) without plumbing paths everywhere;
pass ``directory=`` (e.g. via :func:`repro.store.create_store`) when state
must outlive the process.
"""

from __future__ import annotations

import os
import shutil
import struct
import tempfile
import weakref
import zlib
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.crypto.hashing import DEFAULT_DIGEST_SIZE
from repro.errors import ProofError, StorageError
from repro.store.compact import CompactMerkleStore
from repro.store.incremental import IncrementalMerkleStore

#: Snapshot file magic; the trailing version byte pair pins the format.
SNAPSHOT_MAGIC = b"RITMSNAP"

#: Pinned snapshot format version; bumped on any layout change.
SNAPSHOT_VERSION = 1

#: WAL file name inside the store directory.
WAL_FILENAME = "wal.log"

#: Snapshot file name inside the store directory.
SNAPSHOT_FILENAME = "snapshot.bin"

#: Default number of WAL records between automatic snapshots (0 disables
#: automatic snapshotting; explicit :meth:`DurableMerkleStore.snapshot`
#: calls always work).
DEFAULT_SNAPSHOT_EVERY = 512

#: WAL record types.
_RECORD_INSERT = 1
_RECORD_REMOVE = 2

#: WAL record header: sequence number (u64), type (u8), payload length (u32).
_RECORD_HEADER = struct.Struct(">QBI")

#: Trailing CRC32 over header + payload.
_RECORD_CRC = struct.Struct(">I")

#: Snapshot fixed header after the magic: version (u16), digest size (u8),
#: covered sequence number (u64), leaf count (u64).
_SNAPSHOT_HEADER = struct.Struct(">HBQQ")


def atomic_write(path: Union[str, Path], data: bytes, sync: bool = False) -> None:
    """Write ``data`` to ``path`` via a temp file and atomic rename.

    The crash-ordering primitive shared by store snapshots and RA
    checkpoint files: a crash at any point leaves either the old file or
    the complete new one, never a torn write.  ``sync=True`` fsyncs before
    the rename.
    """
    path = Path(path)
    fd, temp_name = tempfile.mkstemp(prefix=path.name + ".", dir=path.parent)
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            if sync:
                os.fsync(handle.fileno())
        os.replace(temp_name, path)
    except OSError:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise


def encode_leaf_pairs(items: Sequence[Tuple[bytes, bytes]]) -> bytes:
    """Length-prefixed ``(key, value)`` frames (u16 key, u32 value).

    The one leaf wire shape shared by WAL insert records, snapshots, and RA
    replica checkpoints (:mod:`repro.ritm.persistence`) — callers prepend
    their own item count.
    """
    parts = []
    for key, value in items:
        parts.append(struct.pack(">H", len(key)))
        parts.append(key)
        parts.append(struct.pack(">I", len(value)))
        parts.append(value)
    return b"".join(parts)


def decode_leaf_pairs(
    payload: bytes, offset: int, count: int
) -> Tuple[List[Tuple[bytes, bytes]], int]:
    """Decode ``count`` frames from ``payload`` starting at ``offset``.

    Inverse of :func:`encode_leaf_pairs`; returns the items and the offset
    after the last frame.  Raises :class:`StorageError` on truncation.
    """
    try:
        items: List[Tuple[bytes, bytes]] = []
        for _ in range(count):
            (key_length,) = struct.unpack_from(">H", payload, offset)
            offset += 2
            key = payload[offset : offset + key_length]
            if len(key) != key_length:
                raise ValueError("short key")
            offset += key_length
            (value_length,) = struct.unpack_from(">I", payload, offset)
            offset += 4
            value = payload[offset : offset + value_length]
            if len(value) != value_length:
                raise ValueError("short value")
            offset += value_length
            items.append((key, value))
        return items, offset
    except (struct.error, ValueError) as exc:
        raise StorageError(f"malformed leaf frames: {exc}") from None


def _encode_insert_payload(batch: Sequence[Tuple[bytes, bytes]]) -> bytes:
    """One WAL insert record's payload: u32 count + leaf frames."""
    return struct.pack(">I", len(batch)) + encode_leaf_pairs(batch)


def _decode_insert_payload(payload: bytes) -> List[Tuple[bytes, bytes]]:
    """Inverse of :func:`_encode_insert_payload`; raises on malformed data."""
    try:
        (count,) = struct.unpack_from(">I", payload, 0)
    except struct.error as exc:
        raise StorageError(f"malformed WAL insert payload: {exc}") from None
    items, offset = decode_leaf_pairs(payload, 4, count)
    if offset != len(payload):
        raise StorageError("malformed WAL insert payload: trailing bytes")
    return items


def _encode_remove_payload(keys: Sequence[bytes]) -> bytes:
    """Length-prefixed keys of one remove record."""
    parts = [struct.pack(">I", len(keys))]
    for key in keys:
        parts.append(struct.pack(">H", len(key)))
        parts.append(key)
    return b"".join(parts)


def _decode_remove_payload(payload: bytes) -> List[bytes]:
    """Inverse of :func:`_encode_remove_payload`; raises on malformed data."""
    try:
        (count,) = struct.unpack_from(">I", payload, 0)
        offset = 4
        keys: List[bytes] = []
        for _ in range(count):
            (key_length,) = struct.unpack_from(">H", payload, offset)
            offset += 2
            key = payload[offset : offset + key_length]
            if len(key) != key_length:
                raise ValueError("short key")
            offset += key_length
            keys.append(key)
        if offset != len(payload):
            raise ValueError("trailing bytes after last key")
        return keys
    except (struct.error, ValueError) as exc:
        raise StorageError(f"malformed WAL remove payload: {exc}") from None


class WALOverlay:
    """Write-ahead-log persistence layered over an in-memory store engine.

    A cooperative mixin: subclass as ``class Engine(WALOverlay, Core)``
    where ``Core`` is any :class:`~repro.store.base.SortedLeafStore` engine
    exposing the ``_prepare_batch`` / ``_apply_prepared_batch`` seam (both
    the incremental and compact engines do).  Every mutator validates its
    input against the current state, appends a checksummed WAL record, and
    only then delegates the in-memory mutation to ``Core`` via ``super()``;
    recovery replays snapshot + WAL through the same seam, so the overlay
    never re-implements tree semantics and cannot drift from its core.
    """

    def __init__(
        self,
        directory: Optional[Union[str, Path]] = None,
        digest_size: int = DEFAULT_DIGEST_SIZE,
        snapshot_every: int = DEFAULT_SNAPSHOT_EVERY,
        sync: bool = False,
    ) -> None:
        """Open (and recover) the store persisted under ``directory``.

        ``directory=None`` creates a private temporary directory removed on
        :meth:`close`.  ``snapshot_every`` bounds WAL growth (0 disables
        automatic snapshots); ``sync=True`` fsyncs after every append and
        snapshot for real crash durability at a heavy per-write cost (the
        default relies on OS write-back, which is what the simulated stack
        and benchmarks want).
        """
        super().__init__(digest_size)
        if snapshot_every < 0:
            raise StorageError("snapshot_every cannot be negative")
        self._owns_directory = directory is None
        if directory is None:
            directory = tempfile.mkdtemp(prefix="ritm-durable-store-")
        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)
        self._snapshot_every = snapshot_every
        self._sync = sync
        self._closed = False
        self._next_seq = 1
        #: Sequence number covered by the last snapshot written/loaded.
        self._snapshot_seq = 0
        #: Operational counters (benchmarks and tests read these).
        self.records_logged = 0
        self.records_replayed = 0
        self.snapshots_written = 0
        self.recovered_from_snapshot = False
        self._recover()
        self._wal = open(self._wal_path, "ab")
        if self._owns_directory:
            # Temp-backed stores must not litter /tmp when callers forget
            # close(): reclaim the directory at GC / interpreter exit too.
            self._directory_finalizer = weakref.finalize(
                self, shutil.rmtree, str(self._directory), True
            )
        else:
            self._directory_finalizer = None

    # -- paths and introspection -------------------------------------------

    @property
    def directory(self) -> Path:
        """The directory holding this store's WAL and snapshot."""
        return self._directory

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    @property
    def _wal_path(self) -> Path:
        return self._directory / WAL_FILENAME

    @property
    def _snapshot_path(self) -> Path:
        return self._directory / SNAPSHOT_FILENAME

    def wal_size_bytes(self) -> int:
        """Current size of the write-ahead log file."""
        try:
            return os.path.getsize(self._wal_path)
        except OSError:
            return 0

    def snapshot_size_bytes(self) -> int:
        """Current size of the snapshot file (0 when none exists)."""
        try:
            return os.path.getsize(self._snapshot_path)
        except OSError:
            return 0

    # -- mutation (validate → log → apply) ---------------------------------

    def insert(self, key: bytes, value: bytes) -> int:
        """Insert one leaf, durably: the WAL record precedes the mutation."""
        self._check_open()
        self._insertion_point(key)  # validate before anything hits the log
        self._append_record(_RECORD_INSERT, _encode_insert_payload([(key, value)]))
        index = super().insert(key, value)
        self._after_commit()
        return index

    def insert_batch(self, items: Iterable[Tuple[bytes, bytes]]) -> int:
        """Insert a batch durably: one WAL record per applied transaction."""
        self._check_open()
        batch = self._prepare_batch(items)
        if not batch:
            return 0
        self._append_record(_RECORD_INSERT, _encode_insert_payload(batch))
        applied = self._apply_prepared_batch(batch)
        self._after_commit()
        return applied

    def remove_batch(self, keys: Iterable[bytes]) -> int:
        """Remove a batch durably (the rollback path is logged too)."""
        self._check_open()
        targets = sorted(set(keys))
        if not targets:
            return 0
        for key in targets:
            if self._find(key) is None:
                raise ProofError(f"key {key.hex()} is not in the tree; cannot remove")
        self._append_record(_RECORD_REMOVE, _encode_remove_payload(targets))
        removed = super().remove_batch(targets)
        self._after_commit()
        return removed

    # -- snapshots ----------------------------------------------------------

    def snapshot(self) -> Path:
        """Write a snapshot covering the whole applied history, reset the WAL.

        The snapshot is written to a temp file and atomically renamed into
        place before the WAL is truncated, so a crash at any point leaves
        either the old (snapshot, WAL) pair or the new snapshot plus a WAL
        whose records the snapshot already covers (replay skips them by
        sequence number).
        """
        self._check_open()
        covered_seq = self._next_seq - 1
        body = bytearray()
        body += SNAPSHOT_MAGIC
        body += _SNAPSHOT_HEADER.pack(
            SNAPSHOT_VERSION, self._digest_size, covered_seq, len(self._keys)
        )
        # (no per-dump count prefix: the header's leaf count serves as one)
        body += encode_leaf_pairs(list(zip(self._keys, self._values)))
        body += _RECORD_CRC.pack(zlib.crc32(bytes(body)))
        atomic_write(self._snapshot_path, bytes(body), sync=self._sync)
        self._snapshot_seq = covered_seq
        self.snapshots_written += 1
        # Reset the WAL: everything it held is now covered by the snapshot.
        self._wal.close()
        self._wal = open(self._wal_path, "wb")
        return self._snapshot_path

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Flush and close the WAL; temp-backed stores delete their files.

        After ``close()`` the in-memory tree keeps serving roots and proofs
        but every mutation raises :class:`StorageError`.  Closing twice is a
        no-op.
        """
        if self._closed:
            return
        self._closed = True
        self._wal.flush()
        if self._sync:
            os.fsync(self._wal.fileno())
        self._wal.close()
        if self._directory_finalizer is not None:
            self._directory_finalizer()  # idempotent rmtree of the temp dir

    # -- recovery -----------------------------------------------------------

    def _recover(self) -> None:
        """Load the snapshot (if any) and replay the WAL suffix."""
        if self._snapshot_path.exists():
            self._load_snapshot()
            self.recovered_from_snapshot = True
        last_seq, good_offset, torn = self._replay_wal()
        self._next_seq = max(last_seq, self._snapshot_seq) + 1
        if torn:
            # Discard the torn tail so the next append starts at a clean
            # record boundary instead of corrupting the log forever.
            with open(self._wal_path, "ab") as handle:
                handle.truncate(good_offset)

    def _load_snapshot(self) -> None:
        """Rebuild the leaf arrays and hash levels from the snapshot file."""
        data = self._snapshot_path.read_bytes()
        floor = len(SNAPSHOT_MAGIC) + _SNAPSHOT_HEADER.size + _RECORD_CRC.size
        if len(data) < floor or not data.startswith(SNAPSHOT_MAGIC):
            raise StorageError(f"{self._snapshot_path} is not a RITM snapshot")
        (stored_crc,) = _RECORD_CRC.unpack_from(data, len(data) - _RECORD_CRC.size)
        if zlib.crc32(data[: -_RECORD_CRC.size]) != stored_crc:
            raise StorageError(f"{self._snapshot_path} failed its checksum")
        version, digest_size, covered_seq, leaf_count = _SNAPSHOT_HEADER.unpack_from(
            data, len(SNAPSHOT_MAGIC)
        )
        if version != SNAPSHOT_VERSION:
            raise StorageError(
                f"{self._snapshot_path} has format version {version}; this "
                f"engine reads version {SNAPSHOT_VERSION}"
            )
        if digest_size != self._digest_size:
            raise StorageError(
                f"{self._snapshot_path} was written with digest_size "
                f"{digest_size}, store opened with {self._digest_size}"
            )
        items, end = decode_leaf_pairs(
            data, len(SNAPSHOT_MAGIC) + _SNAPSHOT_HEADER.size, leaf_count
        )
        if end != len(data) - _RECORD_CRC.size:
            raise StorageError(f"{self._snapshot_path} has trailing bytes")
        if items:
            self._replay_insert(items)
        self._snapshot_seq = covered_seq

    def _replay_wal(self) -> Tuple[int, int, bool]:
        """Apply every complete WAL record newer than the snapshot.

        Returns ``(last good sequence number, offset after the last good
        record, whether a torn tail was found)``.  A truncated or
        checksum-failing record ends replay — that is the crash-at-a-record
        contract — but a record that *decodes* and then contradicts the
        recovered state (e.g. removing an absent key) means the files do not
        belong together and raises :class:`StorageError`.
        """
        last_seq = self._snapshot_seq
        good_offset = 0
        torn = False
        try:
            data = self._wal_path.read_bytes()
        except OSError:
            return last_seq, good_offset, torn
        offset = 0
        while offset < len(data):
            if offset + _RECORD_HEADER.size > len(data):
                torn = True
                break
            seq, record_type, payload_length = _RECORD_HEADER.unpack_from(data, offset)
            end = offset + _RECORD_HEADER.size + payload_length + _RECORD_CRC.size
            if end > len(data):
                torn = True
                break
            payload = data[offset + _RECORD_HEADER.size : end - _RECORD_CRC.size]
            (stored_crc,) = _RECORD_CRC.unpack_from(data, end - _RECORD_CRC.size)
            if zlib.crc32(data[offset : end - _RECORD_CRC.size]) != stored_crc:
                torn = True
                break
            if seq > self._snapshot_seq:
                self._apply_replayed(record_type, payload)
                self.records_replayed += 1
                last_seq = seq
            offset = end
            good_offset = end
        return last_seq, good_offset, torn

    def _apply_replayed(self, record_type: int, payload: bytes) -> None:
        """Apply one decoded WAL record to the in-memory tree."""
        if record_type == _RECORD_INSERT:
            self._replay_insert(_decode_insert_payload(payload))
        elif record_type == _RECORD_REMOVE:
            keys = _decode_remove_payload(payload)
            for key in keys:
                if self._find(key) is None:
                    raise StorageError(
                        "WAL remove record names a key absent from the "
                        "recovered state; snapshot and WAL do not match"
                    )
            super().remove_batch(keys)
        else:
            raise StorageError(f"unknown WAL record type {record_type}")

    def _replay_insert(self, items: List[Tuple[bytes, bytes]]) -> None:
        """Insert replayed/snapshot leaves, re-validating against the state."""
        try:
            batch = self._prepare_batch(items)
        except ProofError as exc:
            raise StorageError(
                f"WAL/snapshot leaves conflict with the recovered state: {exc}"
            ) from None
        if batch:
            self._apply_prepared_batch(batch)

    # -- internals ----------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise StorageError(
                f"durable store at {self._directory} is closed; no further "
                f"mutations are possible"
            )

    def _append_record(self, record_type: int, payload: bytes) -> None:
        """Append one checksummed record and make it durable-ish (flush)."""
        header = _RECORD_HEADER.pack(self._next_seq, record_type, len(payload))
        record = header + payload
        self._wal.write(record + _RECORD_CRC.pack(zlib.crc32(record)))
        self._wal.flush()
        if self._sync:
            os.fsync(self._wal.fileno())
        self._next_seq += 1
        self.records_logged += 1

    def _after_commit(self) -> None:
        """Auto-snapshot once enough records accumulated since the last one."""
        if not self._snapshot_every:
            return
        if (self._next_seq - 1) - self._snapshot_seq >= self._snapshot_every:
            self.snapshot()


class DurableMerkleStore(WALOverlay, IncrementalMerkleStore):
    """An incremental Merkle store persisted through a WAL plus snapshots."""

    engine_name = "durable"


class DurableCompactMerkleStore(WALOverlay, CompactMerkleStore):
    """The flat-buffer compact core persisted through a WAL plus snapshots.

    Same on-disk formats and recovery contract as :class:`DurableMerkleStore`
    (the two are interchangeable over one directory); the in-memory side uses
    the compact engine's byte arenas and level-vectorized hashing.
    """

    engine_name = "durable-compact"
