"""Pluggable authenticated-dictionary storage engines.

This package is the seam between RITM's *semantics* (sorted-leaf Merkle
trees with presence/absence proofs, defined in :mod:`repro.crypto.merkle`)
and their *realisation*.  Every engine commits to exactly the same tree
shape — pair adjacent nodes, promote the odd node unchanged — so all
engines produce byte-identical roots and proofs for the same leaf set and
can be differentially tested against each other.

Five engines ship today (see ``docs/STORAGE.md`` for the full guide):

* :class:`NaiveMerkleStore` — the original full-rebuild tree.  Every
  mutation invalidates the hash levels; the next root or proof request
  rehashes all ``N`` leaves.  Kept as the differential-testing oracle.
* :class:`IncrementalMerkleStore` — maintains the hash levels across
  mutations.  Appends (keys sorting after every stored key) rehash only the
  ``O(log N)`` right-edge path; mid-tree inserts rehash only the dirty
  suffix of each level; batches are applied with one sort-merge pass and a
  single suffix recomputation.
* :class:`CompactMerkleStore` — the web-scale flat-buffer engine: keys and
  values in contiguous byte arenas, one digest-strided ``bytearray`` per
  hash level, a dirty watermark deferring recomputation until the next
  read settles each level's suffix in one pass, and proofs served as slice
  reads.  ~47 B/leaf and order-of-magnitude faster batch appends at 10⁶+
  leaves.
* :class:`DurableMerkleStore` — the incremental engine plus crash-safe
  persistence via :class:`WALOverlay`: every mutation is appended to a
  checksummed write-ahead log before it is applied, periodic snapshots
  bound the log, and reopening the store's directory recovers
  byte-identical roots and proofs after a crash at any record boundary.
* :class:`DurableCompactMerkleStore` — the same WAL overlay composed over
  the compact core; directories interchange freely with ``durable``.

Engines with real I/O participate in an explicit lifecycle: call
:meth:`AuthenticatedStore.close` (or use the store as a context manager)
when done; in-memory engines treat it as a no-op.  Future engines
(mmap-backed, multi-process sharded, C-accelerated) plug in by subclassing
:class:`AuthenticatedStore` and registering in :data:`ENGINES`.
"""

from __future__ import annotations

from typing import Dict, Type

from repro.crypto.hashing import DEFAULT_DIGEST_SIZE
from repro.errors import ConfigurationError
from repro.store.base import AuthenticatedStore, LeafItemsView, LeafKeysView
from repro.store.compact import CompactMerkleStore
from repro.store.durable import DurableCompactMerkleStore, DurableMerkleStore
from repro.store.incremental import IncrementalMerkleStore
from repro.store.naive import NaiveMerkleStore

#: Engine used when callers do not choose one explicitly.
DEFAULT_ENGINE = "incremental"

#: Registry of available engines; new backends register here.
ENGINES: Dict[str, Type[AuthenticatedStore]] = {
    NaiveMerkleStore.engine_name: NaiveMerkleStore,
    IncrementalMerkleStore.engine_name: IncrementalMerkleStore,
    CompactMerkleStore.engine_name: CompactMerkleStore,
    DurableMerkleStore.engine_name: DurableMerkleStore,
    DurableCompactMerkleStore.engine_name: DurableCompactMerkleStore,
}


def create_store(
    engine: str | None = None,
    digest_size: int = DEFAULT_DIGEST_SIZE,
    **engine_options: object,
) -> AuthenticatedStore:
    """Instantiate the engine named ``engine`` (default :data:`DEFAULT_ENGINE`).

    ``engine_options`` are forwarded to the engine's constructor for
    engine-specific knobs — e.g. ``create_store("durable",
    directory="state/ca")`` pins the durable engine's persistence directory
    instead of using a per-instance temporary one.  Passing an option the
    chosen engine does not understand raises :class:`ConfigurationError`.
    """
    name = engine if engine is not None else DEFAULT_ENGINE
    try:
        engine_class = ENGINES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown store engine {name!r}; available engines: {sorted(ENGINES)}"
        ) from None
    try:
        return engine_class(digest_size=digest_size, **engine_options)
    except TypeError as exc:
        raise ConfigurationError(
            f"store engine {name!r} rejected options "
            f"{sorted(engine_options)}: {exc}"
        ) from None


__all__ = [
    "AuthenticatedStore",
    "LeafKeysView",
    "LeafItemsView",
    "NaiveMerkleStore",
    "IncrementalMerkleStore",
    "CompactMerkleStore",
    "DurableMerkleStore",
    "DurableCompactMerkleStore",
    "ENGINES",
    "DEFAULT_ENGINE",
    "create_store",
]
