"""Pluggable authenticated-dictionary storage engines.

This package is the seam between RITM's *semantics* (sorted-leaf Merkle
trees with presence/absence proofs, defined in :mod:`repro.crypto.merkle`)
and their *realisation*.  Every engine commits to exactly the same tree
shape — pair adjacent nodes, promote the odd node unchanged — so all
engines produce byte-identical roots and proofs for the same leaf set and
can be differentially tested against each other.

Two engines ship today:

* :class:`NaiveMerkleStore` — the original full-rebuild tree.  Every
  mutation invalidates the hash levels; the next root or proof request
  rehashes all ``N`` leaves.  Kept as the differential-testing oracle.
* :class:`IncrementalMerkleStore` — maintains the hash levels across
  mutations.  Appends (keys sorting after every stored key) rehash only the
  ``O(log N)`` right-edge path; mid-tree inserts rehash only the dirty
  suffix of each level; batches are applied with one sort-merge pass and a
  single suffix recomputation.

Future engines (persistent/mmap-backed, multi-process sharded, C-accelerated)
plug in by subclassing :class:`AuthenticatedStore` and registering in
:data:`ENGINES`.
"""

from __future__ import annotations

from typing import Dict, Optional, Type

from repro.crypto.hashing import DEFAULT_DIGEST_SIZE
from repro.errors import ConfigurationError
from repro.store.base import AuthenticatedStore
from repro.store.incremental import IncrementalMerkleStore
from repro.store.naive import NaiveMerkleStore

#: Engine used when callers do not choose one explicitly.
DEFAULT_ENGINE = "incremental"

#: Registry of available engines; new backends register here.
ENGINES: Dict[str, Type[AuthenticatedStore]] = {
    NaiveMerkleStore.engine_name: NaiveMerkleStore,
    IncrementalMerkleStore.engine_name: IncrementalMerkleStore,
}


def create_store(
    engine: Optional[str] = None, digest_size: int = DEFAULT_DIGEST_SIZE
) -> AuthenticatedStore:
    """Instantiate the engine named ``engine`` (default :data:`DEFAULT_ENGINE`)."""
    name = engine if engine is not None else DEFAULT_ENGINE
    try:
        engine_class = ENGINES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown store engine {name!r}; available engines: {sorted(ENGINES)}"
        ) from None
    return engine_class(digest_size=digest_size)


__all__ = [
    "AuthenticatedStore",
    "NaiveMerkleStore",
    "IncrementalMerkleStore",
    "ENGINES",
    "DEFAULT_ENGINE",
    "create_store",
]
