"""PKI substrate: serial numbers, certificates, CAs, chains, validation."""

from repro.pki.ca import (
    DEFAULT_VALIDITY_SECONDS,
    CertificationAuthority,
    RevocationRecord,
    TrustStore,
)
from repro.pki.certificate import Certificate, CertificateChain
from repro.pki.serial import (
    DEFAULT_SERIAL_BYTES,
    MAX_SERIAL_BYTES,
    SerialNumber,
    SerialNumberAllocator,
)
from repro.pki.validation import ValidationResult, parse_certificate, validate_chain

__all__ = [
    "SerialNumber",
    "SerialNumberAllocator",
    "DEFAULT_SERIAL_BYTES",
    "MAX_SERIAL_BYTES",
    "Certificate",
    "CertificateChain",
    "CertificationAuthority",
    "RevocationRecord",
    "TrustStore",
    "DEFAULT_VALIDITY_SECONDS",
    "ValidationResult",
    "validate_chain",
    "parse_certificate",
]
