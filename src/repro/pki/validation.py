"""Standard (non-revocation) certificate-chain validation.

This is the "standard validation" the paper's client runs in §III step 5a
before checking the RITM revocation status: every certificate in the chain is
within its validity window, each signature verifies under its issuer's key,
intermediates carry the CA flag, and the chain terminates at a trusted root.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import CertificateError
from repro.pki.ca import TrustStore
from repro.pki.certificate import Certificate, CertificateChain


@dataclass
class ValidationResult:
    """Outcome of a chain validation with a per-check trail for diagnostics."""

    valid: bool
    reason: Optional[str] = None
    checks: List[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.valid


def validate_chain(
    chain: CertificateChain,
    trust_store: TrustStore,
    now: int,
    expected_subject: Optional[str] = None,
) -> ValidationResult:
    """Validate a certificate chain against a trust store at time ``now``."""
    checks: List[str] = []

    leaf = chain.leaf
    if expected_subject is not None and leaf.subject != expected_subject:
        return ValidationResult(
            valid=False,
            reason=f"leaf subject {leaf.subject!r} does not match expected {expected_subject!r}",
            checks=checks,
        )
    checks.append("subject-match")

    for certificate in chain:
        if not certificate.is_valid_at(now):
            return ValidationResult(
                valid=False,
                reason=f"certificate for {certificate.subject!r} outside validity window",
                checks=checks,
            )
    checks.append("validity-window")

    for certificate, issuer in chain.pairs():
        if issuer is not None:
            if not issuer.is_ca:
                return ValidationResult(
                    valid=False,
                    reason=f"issuer certificate {issuer.subject!r} is not a CA certificate",
                    checks=checks,
                )
            if certificate.issuer != issuer.subject:
                return ValidationResult(
                    valid=False,
                    reason=(
                        f"chain is out of order: {certificate.subject!r} names issuer "
                        f"{certificate.issuer!r} but is followed by {issuer.subject!r}"
                    ),
                    checks=checks,
                )
            if not certificate.verify_signature(issuer.public_key):
                return ValidationResult(
                    valid=False,
                    reason=f"signature on {certificate.subject!r} does not verify",
                    checks=checks,
                )
    checks.append("signatures")

    anchor = chain.certificates[-1]
    anchor_key = trust_store.public_key_for(anchor.issuer)
    if anchor_key is None:
        return ValidationResult(
            valid=False,
            reason=f"chain does not terminate at a trusted root ({anchor.issuer!r} unknown)",
            checks=checks,
        )
    if not anchor.verify_signature(anchor_key):
        return ValidationResult(
            valid=False,
            reason=f"root signature on {anchor.subject!r} does not verify",
            checks=checks,
        )
    checks.append("trust-anchor")

    return ValidationResult(valid=True, checks=checks)


def parse_certificate(data: bytes) -> Certificate:
    """Parse a single certificate, re-raising parse failures as CertificateError."""
    try:
        return Certificate.from_bytes(data)
    except CertificateError:
        raise
    except Exception as exc:  # defensive: malformed lengths etc.
        raise CertificateError(f"malformed certificate: {exc}") from exc
