"""Certificate serial numbers.

RFC 5280 serial numbers are positive integers of at most 20 bytes assigned
uniquely per CA.  The paper's dataset analysis (§VII-A) found 3-byte serials
to be the most common size (32 % of revocations), and uses 3-byte serials
throughout its overhead figures; the default here matches that.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

MAX_SERIAL_BYTES = 20
#: Serial size used by the paper's evaluation (§VII-A).
DEFAULT_SERIAL_BYTES = 3


@dataclass(frozen=True, order=True)
class SerialNumber:
    """A CA-assigned certificate serial number.

    Ordering and equality are defined on the integer value, which also makes
    lexicographic ordering of the fixed-width encoding consistent with
    numeric ordering (the property the sorted Merkle tree relies on).
    """

    value: int
    width: int = DEFAULT_SERIAL_BYTES

    def __post_init__(self) -> None:
        if self.value <= 0:
            raise ValueError("serial numbers are positive integers")
        if not 1 <= self.width <= MAX_SERIAL_BYTES:
            raise ValueError(f"serial width must be in [1, {MAX_SERIAL_BYTES}]")
        if self.value >= 256**self.width:
            raise ValueError(
                f"serial {self.value} does not fit in {self.width} bytes"
            )

    def to_bytes(self) -> bytes:
        """Fixed-width big-endian encoding (sorts the same as the integer)."""
        return self.value.to_bytes(self.width, "big")

    @classmethod
    def from_bytes(cls, data: bytes) -> "SerialNumber":
        if not data or len(data) > MAX_SERIAL_BYTES:
            raise ValueError("serial encoding must be 1..20 bytes")
        return cls(value=int.from_bytes(data, "big"), width=len(data))

    def __str__(self) -> str:  # e.g. "73E10A5"-style display as in Fig. 3
        return format(self.value, "X")


class SerialNumberAllocator:
    """Deterministic, collision-free serial allocation for one CA.

    Real CAs draw serials at random to make them unpredictable; the allocator
    does the same (from a seeded PRNG so experiments are reproducible) while
    guaranteeing uniqueness within the CA.
    """

    def __init__(self, width: int = DEFAULT_SERIAL_BYTES, seed: int = 0) -> None:
        self._width = width
        self._rng = random.Random(seed)
        self._issued: set[int] = set()

    @property
    def width(self) -> int:
        return self._width

    def allocate(self) -> SerialNumber:
        """Return a serial that has never been returned by this allocator."""
        space = 256**self._width - 1
        if len(self._issued) >= space:
            raise ValueError("serial number space exhausted")
        while True:
            candidate = self._rng.randint(1, space)
            if candidate not in self._issued:
                self._issued.add(candidate)
                return SerialNumber(candidate, self._width)

    def allocate_many(self, count: int) -> list[SerialNumber]:
        return [self.allocate() for _ in range(count)]
