"""Certification authorities: key material, issuance, and revocation records.

A :class:`CertificationAuthority` owns a signing key, issues certificates
(optionally through intermediates), and records revocations.  It is the
*issuance* half of a CA; the RITM-specific half — maintaining the
authenticated dictionary and pushing revocations to the dissemination
network — lives in :mod:`repro.ritm.ca_service` and wraps an instance of this
class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.crypto.signing import KeyPair
from repro.errors import CertificateError
from repro.pki.certificate import Certificate, CertificateChain
from repro.pki.serial import DEFAULT_SERIAL_BYTES, SerialNumber, SerialNumberAllocator

#: Default certificate lifetime: 39 months, the CA/B-Forum maximum cited in §VIII.
DEFAULT_VALIDITY_SECONDS = 39 * 30 * 24 * 3600


@dataclass
class RevocationRecord:
    """One revocation as recorded by the issuing CA."""

    serial: SerialNumber
    revoked_at: int
    reason: str = "unspecified"


class CertificationAuthority:
    """A certification authority with its own root key and serial space."""

    def __init__(
        self,
        name: str,
        serial_width: int = DEFAULT_SERIAL_BYTES,
        key_seed: Optional[bytes] = None,
        parent: Optional["CertificationAuthority"] = None,
    ) -> None:
        self.name = name
        self._keys = KeyPair.generate(key_seed if key_seed is not None else name.encode())
        self._allocator = SerialNumberAllocator(width=serial_width, seed=hash(name) & 0xFFFF)
        self._parent = parent
        self._issued: Dict[int, Certificate] = {}
        self._revoked: Dict[int, RevocationRecord] = {}
        self._certificate: Optional[Certificate] = None

    # -- identity ------------------------------------------------------------

    @property
    def public_key(self):
        return self._keys.public

    @property
    def parent(self) -> Optional["CertificationAuthority"]:
        return self._parent

    def certificate(self, now: int = 0) -> Certificate:
        """This CA's own certificate (self-signed for roots, parent-signed otherwise)."""
        if self._certificate is None:
            issuer = self._parent.name if self._parent else self.name
            signer = self._parent._keys.private if self._parent else self._keys.private
            allocator = self._parent._allocator if self._parent else self._allocator
            unsigned = Certificate(
                subject=self.name,
                issuer=issuer,
                serial=allocator.allocate(),
                public_key=self._keys.public,
                not_before=now,
                not_after=now + 10 * DEFAULT_VALIDITY_SECONDS,
                is_ca=True,
            )
            self._certificate = unsigned.with_signature(signer)
        return self._certificate

    # -- issuance --------------------------------------------------------------

    def issue(
        self,
        subject: str,
        subject_public_key,
        now: int = 0,
        validity_seconds: int = DEFAULT_VALIDITY_SECONDS,
        is_ca: bool = False,
    ) -> Certificate:
        """Issue and record a certificate for ``subject``."""
        unsigned = Certificate(
            subject=subject,
            issuer=self.name,
            serial=self._allocator.allocate(),
            public_key=subject_public_key,
            not_before=now,
            not_after=now + validity_seconds,
            is_ca=is_ca,
        )
        certificate = unsigned.with_signature(self._keys.private)
        self._issued[certificate.serial.value] = certificate
        return certificate

    def issue_chain_for(
        self, subject: str, subject_public_key, now: int = 0
    ) -> CertificateChain:
        """Issue a leaf and return the full chain up to (and including) the root CA."""
        leaf = self.issue(subject, subject_public_key, now=now)
        chain: List[Certificate] = [leaf]
        authority: Optional[CertificationAuthority] = self
        while authority is not None:
            chain.append(authority.certificate(now=now))
            authority = authority.parent
        return CertificateChain(certificates=tuple(chain))

    def issued_certificates(self) -> List[Certificate]:
        return list(self._issued.values())

    def certificate_for(self, serial: SerialNumber) -> Optional[Certificate]:
        """The issued certificate with ``serial``, or ``None`` if unknown."""
        return self._issued.get(serial.value)

    def issued_count(self) -> int:
        return len(self._issued)

    # -- revocation --------------------------------------------------------------

    def revoke(self, serial: SerialNumber, now: int = 0, reason: str = "unspecified") -> RevocationRecord:
        """Record a revocation; revoking an unknown or already-revoked serial fails."""
        if serial.value in self._revoked:
            raise CertificateError(f"serial {serial} already revoked by {self.name}")
        record = RevocationRecord(serial=serial, revoked_at=now, reason=reason)
        self._revoked[serial.value] = record
        return record

    def revoke_many(
        self, serials: Iterable[SerialNumber], now: int = 0, reason: str = "unspecified"
    ) -> List[RevocationRecord]:
        return [self.revoke(serial, now=now, reason=reason) for serial in serials]

    def is_revoked(self, serial: SerialNumber) -> bool:
        return serial.value in self._revoked

    def revocations(self) -> List[RevocationRecord]:
        """All revocations in issuance order."""
        return sorted(self._revoked.values(), key=lambda record: record.revoked_at)

    def revocation_count(self) -> int:
        return len(self._revoked)


@dataclass
class TrustStore:
    """The set of root CAs a client (or RA) trusts."""

    roots: Dict[str, "CertificationAuthority"] = field(default_factory=dict)

    def add(self, authority: CertificationAuthority) -> None:
        self.roots[authority.name] = authority

    def public_key_for(self, name: str):
        if name not in self.roots:
            return None
        return self.roots[name].public_key

    def trusts(self, name: str) -> bool:
        return name in self.roots

    def names(self) -> List[str]:
        return sorted(self.roots)
