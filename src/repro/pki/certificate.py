"""Certificates and their wire encoding.

RITM's RA only needs two facts from the server's certificate — which CA
issued it and what its serial number is — plus enough structure for the
client to run "standard validation" (issuer signature, validity window,
chain building).  This module provides an X.509-like certificate model with
exactly that structure, signed with the library's Ed25519 keys.

The encoding is a deliberately simple length-prefixed binary format; its only
purposes are (a) giving DPI something realistic to parse and (b) making
certificate sizes realistic for the communication-overhead analysis.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional

from repro.crypto.signing import SIGNATURE_SIZE, PrivateKey, PublicKey
from repro.errors import CertificateError
from repro.pki.serial import SerialNumber


def _pack_bytes(data: bytes) -> bytes:
    return struct.pack(">H", len(data)) + data


def _unpack_bytes(buffer: bytes, offset: int) -> tuple[bytes, int]:
    if offset + 2 > len(buffer):
        raise CertificateError("truncated certificate field")
    (length,) = struct.unpack_from(">H", buffer, offset)
    offset += 2
    if offset + length > len(buffer):
        raise CertificateError("truncated certificate field body")
    return buffer[offset : offset + length], offset + length


@dataclass(frozen=True)
class Certificate:
    """A server or CA certificate.

    Attributes
    ----------
    subject:
        Domain name (servers) or CA name (intermediates/roots).
    issuer:
        Name of the CA that signed this certificate.
    serial:
        The issuer-assigned serial number.
    public_key:
        Subject's Ed25519 public key.
    not_before / not_after:
        Validity window in Unix seconds.
    is_ca:
        Whether the subject may itself issue certificates.
    signature:
        Issuer's signature over the to-be-signed encoding.
    """

    subject: str
    issuer: str
    serial: SerialNumber
    public_key: PublicKey
    not_before: int
    not_after: int
    is_ca: bool = False
    signature: bytes = b""

    # -- encoding ----------------------------------------------------------

    def tbs_bytes(self) -> bytes:
        """The to-be-signed portion of the certificate."""
        return b"".join(
            [
                _pack_bytes(self.subject.encode("utf-8")),
                _pack_bytes(self.issuer.encode("utf-8")),
                _pack_bytes(self.serial.to_bytes()),
                _pack_bytes(self.public_key.key_bytes),
                struct.pack(">QQB", self.not_before, self.not_after, int(self.is_ca)),
            ]
        )

    def to_bytes(self) -> bytes:
        """Full wire encoding, including the issuer's signature."""
        return self.tbs_bytes() + _pack_bytes(self.signature)

    @classmethod
    def from_bytes(cls, data: bytes) -> "Certificate":
        offset = 0
        subject, offset = _unpack_bytes(data, offset)
        issuer, offset = _unpack_bytes(data, offset)
        serial_bytes, offset = _unpack_bytes(data, offset)
        key_bytes, offset = _unpack_bytes(data, offset)
        if offset + 17 > len(data):
            raise CertificateError("truncated certificate validity block")
        not_before, not_after, is_ca = struct.unpack_from(">QQB", data, offset)
        offset += 17
        signature, offset = _unpack_bytes(data, offset)
        if offset != len(data):
            raise CertificateError("trailing bytes after certificate")
        return cls(
            subject=subject.decode("utf-8"),
            issuer=issuer.decode("utf-8"),
            serial=SerialNumber.from_bytes(serial_bytes),
            public_key=PublicKey(key_bytes),
            not_before=not_before,
            not_after=not_after,
            is_ca=bool(is_ca),
            signature=signature,
        )

    def encoded_size(self) -> int:
        return len(self.to_bytes())

    # -- signing / verification --------------------------------------------

    def with_signature(self, issuer_key: PrivateKey) -> "Certificate":
        """Return a copy of this certificate signed by ``issuer_key``."""
        return Certificate(
            subject=self.subject,
            issuer=self.issuer,
            serial=self.serial,
            public_key=self.public_key,
            not_before=self.not_before,
            not_after=self.not_after,
            is_ca=self.is_ca,
            signature=issuer_key.sign(self.tbs_bytes()),
        )

    def verify_signature(self, issuer_public_key: PublicKey) -> bool:
        """Check the issuer signature."""
        if len(self.signature) != SIGNATURE_SIZE:
            return False
        return issuer_public_key.verify(self.tbs_bytes(), self.signature)

    def is_valid_at(self, timestamp: int) -> bool:
        """Check the validity window only (no signature, no revocation)."""
        return self.not_before <= timestamp <= self.not_after

    def identifier(self) -> tuple[str, int]:
        """(issuer name, serial value) — the pair an RA uses to pick a dictionary."""
        return (self.issuer, self.serial.value)

    def __str__(self) -> str:
        kind = "CA" if self.is_ca else "EE"
        return f"<{kind} cert {self.subject!r} issued by {self.issuer!r} serial {self.serial}>"


@dataclass(frozen=True)
class CertificateChain:
    """A server certificate followed by intermediates up to (but excluding) the root."""

    certificates: tuple[Certificate, ...]

    def __post_init__(self) -> None:
        if not self.certificates:
            raise CertificateError("a certificate chain cannot be empty")

    @property
    def leaf(self) -> Certificate:
        return self.certificates[0]

    def __len__(self) -> int:
        return len(self.certificates)

    def __iter__(self):
        return iter(self.certificates)

    def to_bytes(self) -> bytes:
        parts = [struct.pack(">B", len(self.certificates))]
        for certificate in self.certificates:
            parts.append(_pack_bytes(certificate.to_bytes()))
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, data: bytes) -> "CertificateChain":
        if not data:
            raise CertificateError("empty chain encoding")
        count = data[0]
        offset = 1
        certificates = []
        for _ in range(count):
            cert_bytes, offset = _unpack_bytes(data, offset)
            certificates.append(Certificate.from_bytes(cert_bytes))
        if offset != len(data):
            raise CertificateError("trailing bytes after certificate chain")
        return cls(certificates=tuple(certificates))

    def encoded_size(self) -> int:
        return len(self.to_bytes())

    def issuer_of_leaf(self) -> str:
        return self.leaf.issuer

    def pairs(self) -> list[tuple[Certificate, Optional[Certificate]]]:
        """(certificate, issuer-certificate-or-None) pairs, leaf first."""
        result = []
        for i, certificate in enumerate(self.certificates):
            issuer = self.certificates[i + 1] if i + 1 < len(self.certificates) else None
            result.append((certificate, issuer))
        return result
