"""A small discrete-event scheduler for time-driven experiments.

The path engine (request/response exchanges) covers the per-connection
protocol; this scheduler covers everything that happens on a timetable:
CAs refreshing dictionaries every Δ, RAs pulling from edge servers every Δ,
consistency probes, and the long-horizon cost simulations that sweep over
months of revocation activity.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.errors import NetworkError
from repro.net.clock import SimulatedClock

EventCallback = Callable[[float], None]


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    sequence: int
    callback: EventCallback = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    label: str = field(default="", compare=False)


class EventHandle:
    """Returned by :meth:`EventScheduler.schedule`; allows cancellation."""

    def __init__(self, event: _ScheduledEvent) -> None:
        self._event = event

    def cancel(self) -> None:
        """Mark the event so the scheduler skips it when its time comes."""
        self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called."""
        return self._event.cancelled

    @property
    def time(self) -> float:
        """The simulated time the event is scheduled for."""
        return self._event.time


class EventScheduler:
    """Priority-queue discrete-event loop driving a :class:`SimulatedClock`."""

    def __init__(self, clock: Optional[SimulatedClock] = None) -> None:
        self.clock = clock if clock is not None else SimulatedClock()
        self._queue: List[_ScheduledEvent] = []
        self._sequence = itertools.count()
        self.processed_events = 0

    def schedule(self, at_time: float, callback: EventCallback, label: str = "") -> EventHandle:
        """Run ``callback(now)`` at absolute simulated time ``at_time``."""
        if at_time < self.clock.now():
            raise NetworkError(
                f"cannot schedule an event at {at_time} before current time {self.clock.now()}"
            )
        event = _ScheduledEvent(
            time=at_time, sequence=next(self._sequence), callback=callback, label=label
        )
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def schedule_after(self, delay: float, callback: EventCallback, label: str = "") -> EventHandle:
        """Run ``callback(now)`` after ``delay`` seconds of simulated time."""
        return self.schedule(self.clock.now() + delay, callback, label)

    def schedule_periodic(
        self,
        period: float,
        callback: EventCallback,
        start: Optional[float] = None,
        label: str = "",
    ) -> EventHandle:
        """Run ``callback`` every ``period`` seconds until the run horizon ends.

        The returned handle cancels *future* firings when cancelled.
        """
        if period <= 0:
            raise NetworkError("periodic events need a positive period")
        first = self.clock.now() + period if start is None else start
        proxy = _PeriodicHandle()

        def fire(now: float) -> None:
            """Run the callback and chain the next firing off ``now``."""
            if proxy.cancelled:
                return
            callback(now)
            if not proxy.cancelled:
                proxy.attach(self.schedule(now + period, fire, label))

        proxy.attach(self.schedule(first, fire, label))
        return proxy

    def schedule_every(
        self,
        interval: float,
        callback: EventCallback,
        start: Optional[float] = None,
        count: Optional[int] = None,
        label: str = "",
    ) -> EventHandle:
        """Drift-free recurring events: firing ``k`` lands exactly at
        ``base + k * interval``.

        Unlike :meth:`schedule_periodic` — which chains each firing off the
        previous one (``now + period``), accumulating floating-point error
        over long horizons — every firing time here is computed
        multiplicatively from the base, so the 10,000th firing of a
        ``0.1``-second interval is exactly ``base + 1000.0``.  ``start``
        pins the base (default: one interval from now); ``count`` bounds
        the number of firings (default: unbounded, until cancelled).
        Cancelling the returned handle stops all future firings.
        """
        if interval <= 0:
            raise NetworkError("recurring events need a positive interval")
        if count is not None and count < 1:
            raise NetworkError("recurring events need at least one firing")
        base = self.clock.now() + interval if start is None else start
        proxy = _PeriodicHandle()

        def fire_at(index: int) -> EventCallback:
            """The callback for firing ``index``, chaining ``index + 1``."""

            def fire(now: float) -> None:
                """Run the callback, then schedule ``base + (k+1)·interval``."""
                if proxy.cancelled:
                    return
                callback(now)
                upcoming = index + 1
                if count is not None and upcoming >= count:
                    return
                if not proxy.cancelled:
                    proxy.attach(
                        self.schedule(base + upcoming * interval, fire_at(upcoming), label)
                    )

            return fire

        proxy.attach(self.schedule(base, fire_at(0), label))
        return proxy

    def run_until(self, end_time: float) -> int:
        """Process every event scheduled at or before ``end_time``; returns count."""
        processed = 0
        while self._queue and self._queue[0].time <= end_time:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.clock.advance_to(event.time)
            event.callback(self.clock.now())
            processed += 1
            self.processed_events += 1
        self.clock.advance_to(end_time)
        return processed

    def run_all(self, max_events: int = 1_000_000) -> int:
        """Drain the queue completely (bounded by ``max_events``)."""
        processed = 0
        while self._queue:
            if processed >= max_events:
                raise NetworkError("event budget exhausted; possible runaway schedule")
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.clock.advance_to(event.time)
            event.callback(self.clock.now())
            processed += 1
            self.processed_events += 1
        return processed

    def pending(self) -> int:
        """The number of not-yet-cancelled events still queued."""
        return sum(1 for event in self._queue if not event.cancelled)


class _PeriodicHandle(EventHandle):
    """Handle for periodic events: cancelling it stops the rescheduling chain."""

    def __init__(self) -> None:
        self._current: Optional[EventHandle] = None
        self._cancelled = False

    def attach(self, handle: EventHandle) -> None:
        self._current = handle

    def cancel(self) -> None:
        self._cancelled = True
        if self._current is not None:
            self._current.cancel()

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def time(self) -> float:
        return self._current.time if self._current is not None else float("nan")
