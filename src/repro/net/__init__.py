"""Network simulation substrate: clocks, packets, links, paths, events."""

from repro.net.clock import SimulatedClock, SkewedClock
from repro.net.link import Link, lan_link, metro_link, wan_link
from repro.net.node import (
    DroppingMiddlebox,
    Endpoint,
    Middlebox,
    TamperingMiddlebox,
    TransparentMiddlebox,
)
from repro.net.packet import Direction, FiveTuple, Packet, make_flow
from repro.net.path import DeliveryRecord, NetworkPath, PathEngine
from repro.net.simulator import EventHandle, EventScheduler

__all__ = [
    "SimulatedClock",
    "SkewedClock",
    "Link",
    "lan_link",
    "metro_link",
    "wan_link",
    "Endpoint",
    "Middlebox",
    "TransparentMiddlebox",
    "DroppingMiddlebox",
    "TamperingMiddlebox",
    "Packet",
    "FiveTuple",
    "Direction",
    "make_flow",
    "NetworkPath",
    "PathEngine",
    "DeliveryRecord",
    "EventScheduler",
    "EventHandle",
]
