"""Links: propagation latency plus transmission time.

Link timing drives two of the paper's experiments: the download-time CDF of
Fig. 5 (edge-server → RA transfers across geographically spread vantage
points) and the "less than 1 % of a 30 ms handshake" latency argument of
§VII-D.  A link is characterised by a one-way propagation delay and a
bandwidth; transferring ``size`` bytes takes ``latency + size / bandwidth``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import NetworkError


@dataclass(frozen=True)
class Link:
    """A unidirectional link between two adjacent hops."""

    latency_seconds: float
    bandwidth_bytes_per_second: float = 12_500_000.0  # 100 Mbit/s default
    name: str = ""

    def __post_init__(self) -> None:
        if self.latency_seconds < 0:
            raise NetworkError("link latency cannot be negative")
        if self.bandwidth_bytes_per_second <= 0:
            raise NetworkError("link bandwidth must be positive")

    def transfer_time(self, size_bytes: int) -> float:
        """One-way delivery time for a message of ``size_bytes``."""
        if size_bytes < 0:
            raise NetworkError("message size cannot be negative")
        return self.latency_seconds + size_bytes / self.bandwidth_bytes_per_second

    def round_trip_time(self, request_bytes: int = 0, response_bytes: int = 0) -> float:
        """Request/response exchange time over this link."""
        return self.transfer_time(request_bytes) + self.transfer_time(response_bytes)


def lan_link() -> Link:
    """A typical LAN hop (0.5 ms, 1 Gbit/s)."""
    return Link(latency_seconds=0.0005, bandwidth_bytes_per_second=125_000_000.0, name="lan")


def metro_link() -> Link:
    """A metro/regional hop (5 ms, 1 Gbit/s)."""
    return Link(latency_seconds=0.005, bandwidth_bytes_per_second=125_000_000.0, name="metro")


def wan_link(latency_seconds: float = 0.04) -> Link:
    """A wide-area hop (default 40 ms, 100 Mbit/s)."""
    return Link(latency_seconds=latency_seconds, bandwidth_bytes_per_second=12_500_000.0, name="wan")
