"""A client↔server path with middleboxes, and the exchange engine over it.

RITM's validation protocol (§III, Fig. 3) is a conversation between a client
and a server across a path that contains zero or more Revocation Agents.
:class:`NetworkPath` models that path: an ordered list of middleboxes and the
links between consecutive hops.  :func:`exchange` delivers a packet along the
path (applying every middlebox in order, accumulating link and processing
latency), hands it to the destination endpoint, and recursively carries any
response packets back until no endpoint has anything left to say.

The engine keeps a log of every delivery, which the tests and the overhead
analysis use to count bytes on the wire and measure added latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.errors import NetworkError
from repro.net.clock import SimulatedClock
from repro.net.link import Link, lan_link
from repro.net.node import Endpoint, Middlebox
from repro.net.packet import Direction, Packet


@dataclass
class DeliveryRecord:
    """One packet delivered end to end (after middlebox processing)."""

    packet: Packet
    direction: Direction
    sent_at: float
    delivered_at: float
    wire_bytes: int
    dropped: bool = False

    @property
    def latency(self) -> float:
        """Seconds between send and delivery."""
        return self.delivered_at - self.sent_at


@dataclass
class NetworkPath:
    """An ordered path: client endpoint, middleboxes, server endpoint."""

    client: Endpoint
    server: Endpoint
    middleboxes: List[Middlebox] = field(default_factory=list)
    links: Optional[List[Link]] = None

    def __post_init__(self) -> None:
        hop_count = len(self.middleboxes) + 1
        if self.links is None:
            self.links = [lan_link() for _ in range(hop_count)]
        if len(self.links) != hop_count:
            raise NetworkError(
                f"a path with {len(self.middleboxes)} middleboxes needs "
                f"{hop_count} links, got {len(self.links)}"
            )

    def hops_for(self, direction: Direction) -> Tuple[Sequence[Middlebox], Endpoint]:
        """Middleboxes in traversal order and the terminating endpoint."""
        if direction is Direction.CLIENT_TO_SERVER:
            return self.middleboxes, self.server
        return list(reversed(self.middleboxes)), self.client


class PathEngine:
    """Delivers packets over a :class:`NetworkPath` and tracks time and bytes."""

    def __init__(self, path: NetworkPath, clock: Optional[SimulatedClock] = None) -> None:
        self.path = path
        self.clock = clock if clock is not None else SimulatedClock()
        self.deliveries: List[DeliveryRecord] = []

    # -- public API -------------------------------------------------------------

    def send_from_client(self, packet: Packet, max_rounds: int = 64) -> List[Packet]:
        """Inject a packet at the client side and run the exchange to quiescence."""
        return self._exchange(packet, Direction.CLIENT_TO_SERVER, max_rounds)

    def send_from_server(self, packet: Packet, max_rounds: int = 64) -> List[Packet]:
        """Inject a packet at the server side and run the exchange to quiescence."""
        return self._exchange(packet, Direction.SERVER_TO_CLIENT, max_rounds)

    def total_wire_bytes(self) -> int:
        """Bytes that actually crossed the wire (dropped packets excluded)."""
        return sum(record.wire_bytes for record in self.deliveries if not record.dropped)

    def last_delivery_latency(self) -> float:
        """Latency of the most recent successful delivery (0.0 if none)."""
        delivered = [record for record in self.deliveries if not record.dropped]
        if not delivered:
            return 0.0
        return delivered[-1].latency

    # -- internals ----------------------------------------------------------------

    def _exchange(self, packet: Packet, direction: Direction, max_rounds: int) -> List[Packet]:
        pending: List[Tuple[Packet, Direction]] = [(packet, direction)]
        delivered: List[Packet] = []
        rounds = 0
        while pending:
            rounds += 1
            if rounds > max_rounds:
                raise NetworkError(
                    f"exchange did not quiesce after {max_rounds} rounds; "
                    "a protocol loop is likely"
                )
            current, current_direction = pending.pop(0)
            responses, final_packet = self._deliver(current, current_direction)
            if final_packet is not None:
                delivered.append(final_packet)
            for response in responses:
                pending.append((response, current_direction.reversed()))
        return delivered

    def _deliver(
        self, packet: Packet, direction: Direction
    ) -> Tuple[List[Packet], Optional[Packet]]:
        """Carry one packet across the path; returns (responses, delivered packet)."""
        middleboxes, destination = self.path.hops_for(direction)
        links = self.path.links if direction is Direction.CLIENT_TO_SERVER else list(
            reversed(self.path.links)
        )
        sent_at = self.clock.now()
        in_flight: List[Packet] = [packet]
        injected: List[Packet] = []

        for hop_index, middlebox in enumerate(middleboxes):
            if not in_flight:
                break
            self.clock.advance(links[hop_index].transfer_time(in_flight[0].size))
            next_flight: List[Packet] = []
            for transiting in in_flight:
                self.clock.advance(middlebox.processing_delay(transiting))
                outputs = middlebox.process_packet(transiting, self.clock.now())
                next_flight.extend(outputs)
            in_flight = next_flight

        if not in_flight:
            self.deliveries.append(
                DeliveryRecord(
                    packet=packet,
                    direction=direction,
                    sent_at=sent_at,
                    delivered_at=self.clock.now(),
                    wire_bytes=0,
                    dropped=True,
                )
            )
            return [], None

        # Final link into the destination endpoint.
        self.clock.advance(links[-1].transfer_time(in_flight[0].size))
        responses: List[Packet] = []
        delivered_packet: Optional[Packet] = None
        for arriving in in_flight:
            self.deliveries.append(
                DeliveryRecord(
                    packet=arriving,
                    direction=direction,
                    sent_at=sent_at,
                    delivered_at=self.clock.now(),
                    wire_bytes=arriving.size,
                )
            )
            delivered_packet = arriving
            responses.extend(destination.handle_packet(arriving, self.clock.now()))
        return responses, delivered_packet
