"""Simulated time.

The paper expresses time in Unix seconds and assumes loose synchronisation
between parties (§II).  Every component in this reproduction takes the
current time as an explicit argument, and experiments drive a single
:class:`SimulatedClock` forward, which makes runs deterministic and lets the
benches sweep the Δ parameter without waiting in real time.
"""

from __future__ import annotations


class SimulatedClock:
    """A monotonically non-decreasing clock measured in (fractional) seconds."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move the clock forward by ``seconds`` (must be non-negative)."""
        if seconds < 0:
            raise ValueError("the simulated clock cannot move backwards")
        self._now += seconds
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move the clock forward to ``timestamp`` (no-op if already past it)."""
        if timestamp > self._now:
            self._now = timestamp
        return self._now


class SkewedClock:
    """A view of a reference clock with a constant offset.

    Used to model the "loosely time synchronized" assumption: clients and RAs
    may disagree with the CA by a bounded skew, which the 2Δ acceptance
    window must absorb.
    """

    def __init__(self, reference: SimulatedClock, skew_seconds: float = 0.0) -> None:
        self._reference = reference
        self.skew_seconds = skew_seconds

    def now(self) -> float:
        """The reference clock's time shifted by the constant skew."""
        return self._reference.now() + self.skew_seconds
