"""Node interfaces for the network simulator.

Two roles exist on a simulated path:

* an :class:`Endpoint` terminates flows — it consumes packets addressed to it
  and may emit response packets (TLS clients and servers);
* a :class:`Middlebox` sits on the path and transforms packets in flight —
  it may pass them unchanged, rewrite their payloads, inject extra packets,
  or drop them (Revocation Agents, and the adversarial middleboxes used in
  the security tests).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional

from repro.net.packet import Packet


class Endpoint(ABC):
    """A flow-terminating host identified by an IP address."""

    def __init__(self, ip_address: str) -> None:
        self.ip_address = ip_address

    @abstractmethod
    def handle_packet(self, packet: Packet, now: float) -> List[Packet]:
        """Consume a packet addressed to this host; return packets to send back."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.ip_address}>"


class Middlebox(ABC):
    """An on-path packet processor."""

    def __init__(self, name: str = "middlebox") -> None:
        self.name = name

    @abstractmethod
    def process_packet(self, packet: Packet, now: float) -> List[Packet]:
        """Transform a transiting packet.

        Returning ``[packet]`` forwards it untouched, returning a modified
        copy rewrites it, returning extra packets injects them after it, and
        returning ``[]`` drops it.
        """

    def processing_delay(self, packet: Packet) -> float:
        """Per-packet processing latency added by this box (seconds)."""
        return 0.0

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


class TransparentMiddlebox(Middlebox):
    """A middlebox that forwards everything untouched (the RA's behaviour for
    non-TLS traffic and unsupported clients)."""

    def process_packet(self, packet: Packet, now: float) -> List[Packet]:
        """Pass the packet through unchanged."""
        return [packet]


class DroppingMiddlebox(Middlebox):
    """An adversarial middlebox that drops packets matching a predicate.

    Used by the security-analysis tests to model blocking attacks on RITM
    status messages (§V, "MITM and Blocking Attack").
    """

    def __init__(self, should_drop, name: str = "dropper") -> None:
        super().__init__(name)
        self._should_drop = should_drop
        self.dropped_count = 0

    def process_packet(self, packet: Packet, now: float) -> List[Packet]:
        """Drop the packet (counting it) when the predicate matches."""
        if self._should_drop(packet):
            self.dropped_count += 1
            return []
        return [packet]


class TamperingMiddlebox(Middlebox):
    """An adversarial middlebox that rewrites payloads matching a predicate."""

    def __init__(self, should_tamper, tamper, name: str = "tamperer") -> None:
        super().__init__(name)
        self._should_tamper = should_tamper
        self._tamper = tamper
        self.tampered_count = 0

    def process_packet(self, packet: Packet, now: float) -> List[Packet]:
        """Rewrite the payload (counting it) when the predicate matches."""
        if self._should_tamper(packet):
            self.tampered_count += 1
            return [packet.with_payload(self._tamper(packet.payload))]
        return [packet]
