"""Packets and flow identification.

The RA keys its per-connection state on the TCP/IP five-tuple (Eq. 4 of the
paper: source/destination IP and port).  The simulator's packet is a thin
container: addressing, an opaque payload (usually one or more serialized TLS
records), and bookkeeping fields the middlebox uses when it rewrites
payloads (the simulated equivalent of fixing up TCP sequence numbers).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Optional, Tuple

_packet_counter = itertools.count(1)


class Direction(Enum):
    """Which way a packet travels relative to the client."""

    CLIENT_TO_SERVER = "client_to_server"
    SERVER_TO_CLIENT = "server_to_client"

    def reversed(self) -> "Direction":
        """The opposite direction of travel."""
        if self is Direction.CLIENT_TO_SERVER:
            return Direction.SERVER_TO_CLIENT
        return Direction.CLIENT_TO_SERVER


@dataclass(frozen=True, order=True)
class FiveTuple:
    """Flow identifier: protocol, source, destination."""

    src_ip: str
    src_port: int
    dst_ip: str
    dst_port: int
    protocol: str = "tcp"

    def reversed(self) -> "FiveTuple":
        """The same flow seen from the other endpoint."""
        return FiveTuple(
            src_ip=self.dst_ip,
            src_port=self.dst_port,
            dst_ip=self.src_ip,
            dst_port=self.src_port,
            protocol=self.protocol,
        )

    def canonical(self) -> "FiveTuple":
        """Direction-independent form: both directions map to the same key."""
        forward = (self.src_ip, self.src_port, self.dst_ip, self.dst_port)
        backward = (self.dst_ip, self.dst_port, self.src_ip, self.src_port)
        if forward <= backward:
            return self
        return self.reversed()

    def __str__(self) -> str:
        return f"{self.src_ip}:{self.src_port} -> {self.dst_ip}:{self.dst_port}/{self.protocol}"


@dataclass(frozen=True)
class Packet:
    """A simulated packet carrying an opaque payload between two endpoints."""

    flow: FiveTuple
    payload: bytes
    direction: Direction = Direction.CLIENT_TO_SERVER
    sequence: int = 0
    created_at: float = 0.0
    packet_id: int = field(default_factory=lambda: next(_packet_counter))

    @property
    def size(self) -> int:
        """Payload size plus a nominal 40-byte TCP/IP header."""
        return len(self.payload) + 40

    def with_payload(self, payload: bytes) -> "Packet":
        """A copy with a rewritten payload (what an RA does when appending status)."""
        return replace(self, payload=payload)

    def reply(self, payload: bytes, created_at: Optional[float] = None) -> "Packet":
        """Build a response packet on the reverse flow."""
        return Packet(
            flow=self.flow.reversed(),
            payload=payload,
            direction=self.direction.reversed(),
            sequence=self.sequence + 1,
            created_at=self.created_at if created_at is None else created_at,
        )


def make_flow(
    client_ip: str, client_port: int, server_ip: str, server_port: int = 443
) -> FiveTuple:
    """Convenience constructor for a client→server TLS flow."""
    return FiveTuple(
        src_ip=client_ip, src_port=client_port, dst_ip=server_ip, dst_port=server_port
    )
