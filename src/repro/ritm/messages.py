"""Binary wire formats for RITM messages.

Two kinds of messages leave a process in RITM and therefore need a byte
encoding:

* the *revocation status* (Eq. 3) an RA piggybacks on TLS traffic towards the
  client — carried in a dedicated ``RITM_STATUS`` TLS record;
* the *dissemination objects* a CA publishes to the CDN and RAs pull every Δ:
  a small "head" object (dictionary size, signed root, current freshness
  statement) and per-batch "issuance" objects with the newly revoked serials.

The encodings are simple length-prefixed structures; their sizes are what the
paper's communication-overhead numbers (Fig. 7, §VII-D) are about, so the
codec is also the source of truth for the analysis module.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from repro.crypto.merkle import AbsenceProof, AuditStep, PresenceProof
from repro.dictionary.authdict import RevocationIssuance
from repro.dictionary.freshness import FreshnessStatement
from repro.dictionary.proofs import RevocationStatus
from repro.dictionary.signed_root import SignedRoot
from repro.errors import ProofError, TLSError
from repro.pki.serial import SerialNumber


def _pack_bytes(data: bytes) -> bytes:
    return struct.pack(">H", len(data)) + data


def _unpack_bytes(buffer: bytes, offset: int) -> Tuple[bytes, int]:
    if offset + 2 > len(buffer):
        raise TLSError("truncated RITM field")
    (length,) = struct.unpack_from(">H", buffer, offset)
    offset += 2
    if offset + length > len(buffer):
        raise TLSError("truncated RITM field body")
    return buffer[offset : offset + length], offset + length


# -- signed roots -------------------------------------------------------------


def encode_signed_root(root: SignedRoot) -> bytes:
    return b"".join(
        [
            _pack_bytes(root.ca_name.encode("utf-8")),
            _pack_bytes(root.root),
            struct.pack(">QQQ", root.size, root.timestamp, root.chain_length),
            _pack_bytes(root.anchor),
            _pack_bytes(root.signature),
        ]
    )


def decode_signed_root(data: bytes, offset: int = 0) -> Tuple[SignedRoot, int]:
    ca_name, offset = _unpack_bytes(data, offset)
    root, offset = _unpack_bytes(data, offset)
    if offset + 24 > len(data):
        raise TLSError("truncated signed root")
    size, timestamp, chain_length = struct.unpack_from(">QQQ", data, offset)
    offset += 24
    anchor, offset = _unpack_bytes(data, offset)
    signature, offset = _unpack_bytes(data, offset)
    return (
        SignedRoot(
            ca_name=ca_name.decode("utf-8"),
            root=root,
            size=size,
            anchor=anchor,
            timestamp=timestamp,
            chain_length=chain_length,
            signature=signature,
        ),
        offset,
    )


# -- freshness statements -------------------------------------------------------


def encode_freshness(statement: FreshnessStatement) -> bytes:
    return b"".join(
        [
            _pack_bytes(statement.ca_name.encode("utf-8")),
            _pack_bytes(statement.value),
            struct.pack(">Q", statement.dictionary_size),
        ]
    )


def decode_freshness(data: bytes, offset: int = 0) -> Tuple[FreshnessStatement, int]:
    ca_name, offset = _unpack_bytes(data, offset)
    value, offset = _unpack_bytes(data, offset)
    if offset + 8 > len(data):
        raise TLSError("truncated freshness statement")
    (size,) = struct.unpack_from(">Q", data, offset)
    offset += 8
    return (
        FreshnessStatement(
            ca_name=ca_name.decode("utf-8"), value=value, dictionary_size=size
        ),
        offset,
    )


# -- Merkle proofs ----------------------------------------------------------------

_PRESENCE_TAG = 1
_ABSENCE_TAG = 2


def _encode_presence(proof: PresenceProof) -> bytes:
    parts = [
        _pack_bytes(proof.key),
        _pack_bytes(proof.value),
        struct.pack(">QQH", proof.leaf_index, proof.tree_size, len(proof.path)),
    ]
    for step in proof.path:
        parts.append(struct.pack(">B", int(step.sibling_is_left)))
        parts.append(_pack_bytes(step.sibling))
    return b"".join(parts)


def _decode_presence(data: bytes, offset: int) -> Tuple[PresenceProof, int]:
    key, offset = _unpack_bytes(data, offset)
    value, offset = _unpack_bytes(data, offset)
    if offset + 18 > len(data):
        raise TLSError("truncated presence proof")
    leaf_index, tree_size, path_len = struct.unpack_from(">QQH", data, offset)
    offset += 18
    steps: List[AuditStep] = []
    for _ in range(path_len):
        if offset + 1 > len(data):
            raise TLSError("truncated audit step")
        is_left = bool(data[offset])
        offset += 1
        sibling, offset = _unpack_bytes(data, offset)
        steps.append(AuditStep(sibling=sibling, sibling_is_left=is_left))
    return (
        PresenceProof(
            key=key,
            value=value,
            leaf_index=leaf_index,
            tree_size=tree_size,
            path=tuple(steps),
        ),
        offset,
    )


def encode_proof(proof: Union[PresenceProof, AbsenceProof]) -> bytes:
    if isinstance(proof, PresenceProof):
        return struct.pack(">B", _PRESENCE_TAG) + _encode_presence(proof)
    if isinstance(proof, AbsenceProof):
        parts = [struct.pack(">B", _ABSENCE_TAG), _pack_bytes(proof.key)]
        parts.append(struct.pack(">Q", proof.tree_size))
        flags = (1 if proof.left is not None else 0) | (2 if proof.right is not None else 0)
        parts.append(struct.pack(">B", flags))
        if proof.left is not None:
            parts.append(_encode_presence(proof.left))
        if proof.right is not None:
            parts.append(_encode_presence(proof.right))
        return b"".join(parts)
    raise ProofError(f"cannot encode proof of type {type(proof).__name__}")


def decode_proof(data: bytes, offset: int = 0) -> Tuple[Union[PresenceProof, AbsenceProof], int]:
    if offset + 1 > len(data):
        raise TLSError("truncated proof tag")
    tag = data[offset]
    offset += 1
    if tag == _PRESENCE_TAG:
        return _decode_presence(data, offset)
    if tag == _ABSENCE_TAG:
        key, offset = _unpack_bytes(data, offset)
        if offset + 9 > len(data):
            raise TLSError("truncated absence proof header")
        (tree_size,) = struct.unpack_from(">Q", data, offset)
        offset += 8
        flags = data[offset]
        offset += 1
        left: Optional[PresenceProof] = None
        right: Optional[PresenceProof] = None
        if flags & 1:
            left, offset = _decode_presence(data, offset)
        if flags & 2:
            right, offset = _decode_presence(data, offset)
        return AbsenceProof(key=key, tree_size=tree_size, left=left, right=right), offset
    raise TLSError(f"unknown proof tag {tag}")


# -- revocation status (Eq. 3) ----------------------------------------------------


def encode_status(status: RevocationStatus) -> bytes:
    """Serialize a revocation status for a ``RITM_STATUS`` TLS record."""
    return b"".join(
        [
            _pack_bytes(status.ca_name.encode("utf-8")),
            _pack_bytes(status.serial.to_bytes()),
            _pack_bytes(encode_proof(status.proof)),
            _pack_bytes(encode_signed_root(status.signed_root)),
            _pack_bytes(encode_freshness(status.freshness)),
        ]
    )


def decode_status(data: bytes, offset: int = 0) -> Tuple[RevocationStatus, int]:
    ca_name, offset = _unpack_bytes(data, offset)
    serial_bytes, offset = _unpack_bytes(data, offset)
    proof_bytes, offset = _unpack_bytes(data, offset)
    root_bytes, offset = _unpack_bytes(data, offset)
    freshness_bytes, offset = _unpack_bytes(data, offset)
    proof, _ = decode_proof(proof_bytes)
    signed_root, _ = decode_signed_root(root_bytes)
    freshness, _ = decode_freshness(freshness_bytes)
    return (
        RevocationStatus(
            ca_name=ca_name.decode("utf-8"),
            serial=SerialNumber.from_bytes(serial_bytes),
            proof=proof,
            signed_root=signed_root,
            freshness=freshness,
        ),
        offset,
    )


def encode_status_bundle(statuses: List[RevocationStatus]) -> bytes:
    """Several statuses in one record (certificate-chain proving, §VIII)."""
    parts = [struct.pack(">B", len(statuses))]
    for status in statuses:
        parts.append(_pack_bytes(encode_status(status)))
    return b"".join(parts)


def decode_status_bundle(data: bytes) -> List[RevocationStatus]:
    if not data:
        raise TLSError("empty RITM status record")
    count = data[0]
    offset = 1
    statuses: List[RevocationStatus] = []
    for _ in range(count):
        status_bytes, offset = _unpack_bytes(data, offset)
        status, _ = decode_status(status_bytes)
        statuses.append(status)
    return statuses


# -- dissemination objects -----------------------------------------------------------


@dataclass(frozen=True)
class DictionaryHead:
    """The small per-CA object RAs poll every Δ.

    Contains everything needed to decide whether the replica is current: the
    dictionary size, the latest signed root, and the latest freshness
    statement.  ``sequence`` is the CA's per-dictionary publication counter;
    it is *not* covered by the root signature (a CDN could not update it
    anyway) but lets RAs detect that an attacker is re-presenting a
    recorded head from many publications ago (see
    :class:`repro.ritm.dissemination.RADisseminationClient`).
    """

    ca_name: str
    size: int
    signed_root: SignedRoot
    freshness: FreshnessStatement
    sequence: int = 0

    def encoded_size(self) -> int:
        return len(encode_head(self))


def encode_head(head: DictionaryHead) -> bytes:
    return b"".join(
        [
            _pack_bytes(head.ca_name.encode("utf-8")),
            struct.pack(">Q", head.size),
            _pack_bytes(encode_signed_root(head.signed_root)),
            _pack_bytes(encode_freshness(head.freshness)),
            struct.pack(">Q", head.sequence),
        ]
    )


def decode_head(data: bytes) -> DictionaryHead:
    offset = 0
    ca_name, offset = _unpack_bytes(data, offset)
    if offset + 8 > len(data):
        raise TLSError("truncated dictionary head")
    (size,) = struct.unpack_from(">Q", data, offset)
    offset += 8
    root_bytes, offset = _unpack_bytes(data, offset)
    freshness_bytes, offset = _unpack_bytes(data, offset)
    signed_root, _ = decode_signed_root(root_bytes)
    freshness, _ = decode_freshness(freshness_bytes)
    sequence = 0
    if offset + 8 <= len(data):
        (sequence,) = struct.unpack_from(">Q", data, offset)
    return DictionaryHead(
        ca_name=ca_name.decode("utf-8"),
        size=size,
        signed_root=signed_root,
        freshness=freshness,
        sequence=sequence,
    )


def encode_issuance(issuance: RevocationIssuance) -> bytes:
    parts = [
        _pack_bytes(issuance.ca_name.encode("utf-8")),
        struct.pack(">QH", issuance.first_number, len(issuance.serials)),
    ]
    for serial in issuance.serials:
        parts.append(_pack_bytes(serial.to_bytes()))
    parts.append(_pack_bytes(encode_signed_root(issuance.signed_root)))
    return b"".join(parts)


@dataclass(frozen=True)
class ShardIndex:
    """The per-CA shard discovery object of sharded mode (§VIII).

    RAs pull this small object every Δ to learn which expiry shards the CA
    currently maintains (``live``) and which it has retired (``retired``),
    then pull one head object per live shard and prune replicas of retired
    ones.  ``width_seconds`` lets an RA map a certificate expiry to a shard
    index without further round trips.
    """

    ca_name: str
    width_seconds: int
    live: Tuple[int, ...]
    retired: Tuple[int, ...] = ()
    #: Per-CA publication counter (unauthenticated, replay detection only).
    sequence: int = 0

    def encoded_size(self) -> int:
        """Wire size in bytes."""
        return len(encode_shard_index(self))


def encode_shard_index(index: ShardIndex) -> bytes:
    """Serialize a shard index for publication on the CDN."""
    return json.dumps(
        {
            "ca": index.ca_name,
            "width_seconds": index.width_seconds,
            "live": list(index.live),
            "retired": list(index.retired),
            "sequence": index.sequence,
        },
        sort_keys=True,
    ).encode("utf-8")


def decode_shard_index(data: bytes) -> ShardIndex:
    """Parse a shard index object, rejecting malformed payloads."""
    try:
        payload = json.loads(data.decode("utf-8"))
        width_seconds = int(payload["width_seconds"])
        if width_seconds <= 0:
            # The index is unauthenticated; a forged zero width must not
            # reach ShardKey arithmetic (or overwrite the agent's width).
            raise ValueError(f"shard width must be positive, got {width_seconds}")
        sequence = int(payload.get("sequence", 0))
        if sequence < 0:
            raise ValueError(f"shard index sequence must be non-negative, got {sequence}")
        return ShardIndex(
            ca_name=payload["ca"],
            width_seconds=width_seconds,
            live=tuple(int(i) for i in payload["live"]),
            retired=tuple(int(i) for i in payload.get("retired", ())),
            sequence=sequence,
        )
    except (ValueError, KeyError, TypeError, UnicodeDecodeError) as exc:
        raise TLSError(f"malformed shard index object: {exc}") from None


# -- key-rotation announcements ------------------------------------------------------


@dataclass(frozen=True)
class KeyAnnouncement:
    """One link of a CA's key-rotation chain, published on the CDN.

    Epoch 0 announces the CA's genesis key and is validated against the
    out-of-band trust anchor RAs are configured with; every later epoch is
    signed by the key of the *previous* epoch, so the full chain extends
    trust from the anchor to the current key without any further
    out-of-band channel.  ``overlap_seconds`` is the grace window granted to
    the key this announcement retires.
    """

    ca_name: str
    key_epoch: int
    public_key_bytes: bytes
    activated_at: int
    overlap_seconds: int
    signature: bytes = b""

    def payload(self) -> bytes:
        """The byte string covered by the previous key's signature."""
        name = self.ca_name.encode("utf-8")
        return b"".join(
            [
                b"ritm-key-announcement:",
                struct.pack(">H", len(name)),
                name,
                struct.pack(">Q", self.key_epoch),
                _pack_bytes(self.public_key_bytes),
                struct.pack(">QQ", self.activated_at, self.overlap_seconds),
            ]
        )

    def encoded_size(self) -> int:
        """Wire size in bytes (for the communication-overhead analysis)."""
        return len(encode_key_announcements((self,)))


def encode_key_announcements(announcements: Tuple[KeyAnnouncement, ...]) -> bytes:
    """Serialize a CA's full announcement chain for CDN publication."""
    return json.dumps(
        [
            {
                "ca": announcement.ca_name,
                "epoch": announcement.key_epoch,
                "public_key": announcement.public_key_bytes.hex(),
                "activated_at": announcement.activated_at,
                "overlap_seconds": announcement.overlap_seconds,
                "signature": announcement.signature.hex(),
            }
            for announcement in announcements
        ],
        sort_keys=True,
    ).encode("utf-8")


def decode_key_announcements(data: bytes) -> Tuple[KeyAnnouncement, ...]:
    """Parse an announcement chain, rejecting malformed payloads."""
    try:
        payload = json.loads(data.decode("utf-8"))
        if not isinstance(payload, list):
            raise ValueError("announcement chain must be a list")
        announcements = []
        for entry in payload:
            overlap_seconds = int(entry["overlap_seconds"])
            activated_at = int(entry["activated_at"])
            if overlap_seconds < 0 or activated_at < 0:
                raise ValueError("announcement timestamps must be non-negative")
            announcements.append(
                KeyAnnouncement(
                    ca_name=entry["ca"],
                    key_epoch=int(entry["epoch"]),
                    public_key_bytes=bytes.fromhex(entry["public_key"]),
                    activated_at=activated_at,
                    overlap_seconds=overlap_seconds,
                    signature=bytes.fromhex(entry["signature"]),
                )
            )
        return tuple(announcements)
    except (ValueError, KeyError, TypeError, UnicodeDecodeError) as exc:
        raise TLSError(f"malformed key announcement chain: {exc}") from None


def decode_issuance(data: bytes) -> RevocationIssuance:
    offset = 0
    ca_name, offset = _unpack_bytes(data, offset)
    if offset + 10 > len(data):
        raise TLSError("truncated issuance header")
    first_number, count = struct.unpack_from(">QH", data, offset)
    offset += 10
    serials = []
    for _ in range(count):
        serial_bytes, offset = _unpack_bytes(data, offset)
        serials.append(SerialNumber.from_bytes(serial_bytes))
    root_bytes, offset = _unpack_bytes(data, offset)
    signed_root, _ = decode_signed_root(root_bytes)
    return RevocationIssuance(
        ca_name=ca_name.decode("utf-8"),
        serials=tuple(serials),
        first_number=first_number,
        signed_root=signed_root,
    )
