"""RITM configuration: the Δ parameter, deployment models, and policy knobs.

Δ (``delta_seconds``) is the central trade-off of the paper: CAs refresh
their dictionaries at least every Δ, RAs pull every Δ, established
connections receive a new status every Δ, and clients accept a status that is
at most 2Δ old.  The paper analyses Δ from 10 seconds to 1 day; the named
constructors below match the values used in its figures.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from enum import Enum

from repro.crypto.hashing import DEFAULT_DIGEST_SIZE
from repro.crypto.signing import DEFAULT_BATCH_WIDTH
from repro.dictionary.sharding import DEFAULT_SHARD_SECONDS
from repro.errors import ConfigurationError
from repro.perf import DEFAULT_PROOF_CACHE_SIZE, DEFAULT_ROOT_CACHE_SIZE
from repro.store import DEFAULT_ENGINE, ENGINES

SECONDS_PER_MINUTE = 60
SECONDS_PER_HOUR = 3600
SECONDS_PER_DAY = 86_400

#: The Δ values swept in the paper's evaluation (Figs. 6 and 7, Table II).
PAPER_DELTA_SWEEP = {
    "10s": 10,
    "1m": SECONDS_PER_MINUTE,
    "5m": 5 * SECONDS_PER_MINUTE,
    "1h": SECONDS_PER_HOUR,
    "1d": SECONDS_PER_DAY,
}


class DeploymentModel(Enum):
    """Where RAs are placed (paper §IV)."""

    CLOSE_TO_SERVER = "close-to-server"
    CLOSE_TO_CLIENT = "close-to-client"


@dataclass(frozen=True)
class RITMConfig:
    """Parameters shared by CAs, RAs, and clients in one RITM deployment."""

    #: The dissemination/refresh period Δ, in seconds.
    delta_seconds: int = 10
    #: How many freshness statements a hash chain provides before a new
    #: signed root is required.
    chain_length: int = 8640
    #: Client tolerance in Δ periods (1 → the paper's 2Δ acceptance window).
    freshness_tolerance_periods: int = 1
    #: Hash truncation (20 bytes in the paper; 32 for the ablation).
    digest_size: int = DEFAULT_DIGEST_SIZE
    #: Deployment model, which determines downgrade-attack protection.
    deployment: DeploymentModel = DeploymentModel.CLOSE_TO_CLIENT
    #: Whether RAs request absence proofs for every certificate in the chain
    #: (§VIII "Certificate chains") or only the leaf.
    prove_full_chain: bool = False
    #: CDN TTL for published objects (0 = no caching, the paper's worst case).
    cdn_ttl_seconds: float = 0.0
    #: Authenticated-store engine backing every dictionary in the deployment
    #: (see :data:`repro.store.ENGINES`).
    store_engine: str = DEFAULT_ENGINE
    #: Expiry-split dictionaries (§VIII "Ever-growing dictionaries"): when
    #: set, the CA routes revocations into per-expiry-window shards and RAs
    #: prune whole shards once their window passes.
    sharded: bool = False
    #: Expiry-window width of each shard, in seconds (sharded mode only).
    shard_width_seconds: int = DEFAULT_SHARD_SECONDS
    #: How often (in Δ periods) CAs retire and RAs prune expired shards.
    prune_every_periods: int = 1
    #: Hot-path verification engine (see docs/PERFORMANCE.md).  Capacity of
    #: the per-party Merkle :class:`~repro.perf.proof_cache.ProofCache`
    #: (0 disables proof caching).
    proof_cache_size: int = DEFAULT_PROOF_CACHE_SIZE
    #: Capacity of the per-party
    #: :class:`~repro.perf.root_cache.VerifiedRootCache` memoizing Ed25519
    #: root verifications (0 disables root-verdict caching).
    root_cache_size: int = DEFAULT_ROOT_CACHE_SIZE
    #: How many signatures share one batched verification equation in
    #: dissemination pulls and resyncs.
    signature_batch_width: int = DEFAULT_BATCH_WIDTH
    #: CA key-rotation schedule in Δ periods (0 = keys never rotate).  Each
    #: rotation publishes a :class:`~repro.ritm.messages.KeyAnnouncement`
    #: signed by the outgoing key and re-signs the current root.
    key_rotation_periods: int = 0
    #: Grace window, in Δ periods, during which roots signed by a
    #: just-retired key still verify (so RAs one pull behind the rotation
    #: announcement do not hard-fail).
    key_overlap_periods: int = 1
    #: How far behind the newest observed publication sequence a head may be
    #: before the RA treats it as a replay attack rather than CDN staleness.
    replay_window: int = 2

    def __post_init__(self) -> None:
        if self.delta_seconds <= 0:
            raise ConfigurationError("delta_seconds must be positive")
        if self.chain_length < 1:
            raise ConfigurationError("chain_length must be at least 1")
        if self.freshness_tolerance_periods < 0:
            raise ConfigurationError("freshness_tolerance_periods cannot be negative")
        if not 1 <= self.digest_size <= 32:
            raise ConfigurationError("digest_size must be between 1 and 32 bytes")
        if self.store_engine not in ENGINES:
            raise ConfigurationError(
                f"unknown store engine {self.store_engine!r}; "
                f"available engines: {sorted(ENGINES)}"
            )
        if self.shard_width_seconds <= 0:
            raise ConfigurationError("shard_width_seconds must be positive")
        if self.prune_every_periods < 1:
            raise ConfigurationError("prune_every_periods must be at least 1")
        if self.proof_cache_size < 0:
            raise ConfigurationError("proof_cache_size cannot be negative")
        if self.root_cache_size < 0:
            raise ConfigurationError("root_cache_size cannot be negative")
        if self.signature_batch_width < 1:
            raise ConfigurationError("signature_batch_width must be at least 1")
        if self.key_rotation_periods < 0:
            raise ConfigurationError("key_rotation_periods cannot be negative")
        if self.key_overlap_periods < 0:
            raise ConfigurationError("key_overlap_periods cannot be negative")
        if self.key_rotation_periods and self.sharded:
            raise ConfigurationError(
                "key rotation is not supported for sharded deployments yet"
            )
        if self.key_rotation_periods and self.key_overlap_periods >= self.key_rotation_periods:
            raise ConfigurationError(
                "key_overlap_periods must be smaller than key_rotation_periods"
            )
        if self.replay_window < 1:
            raise ConfigurationError("replay_window must be at least 1")

    @property
    def attack_window_seconds(self) -> int:
        """The effective attack window: (1 + tolerance) * Δ — 2Δ by default (§V)."""
        return (1 + self.freshness_tolerance_periods) * self.delta_seconds

    @property
    def key_overlap_seconds(self) -> int:
        """The retired-key grace window in seconds."""
        return self.key_overlap_periods * self.delta_seconds

    @property
    def status_refresh_seconds(self) -> int:
        """How often an RA pushes a fresh status on an established connection."""
        return self.delta_seconds

    def with_delta(self, delta_seconds: int) -> "RITMConfig":
        """A copy with a different Δ (used by the parameter sweeps)."""
        return dataclasses.replace(self, delta_seconds=delta_seconds)

    @classmethod
    def for_label(cls, label: str, **overrides) -> "RITMConfig":
        """Config for one of the paper's Δ labels ("10s", "1m", "5m", "1h", "1d")."""
        if label not in PAPER_DELTA_SWEEP:
            raise ConfigurationError(
                f"unknown delta label {label!r}; expected one of {sorted(PAPER_DELTA_SWEEP)}"
            )
        return cls(delta_seconds=PAPER_DELTA_SWEEP[label], **overrides)
