"""Consistency checking and CA accountability (paper §III "Consistency
Checking" and §V "Misbehaving CA").

Because dictionaries are append-only and every signed root binds one exact
dictionary version, a CA that shows different dictionary contents to
different parts of the system must eventually produce two different signed
roots with the same size — cryptographic evidence of equivocation.  RAs (and
optionally clients) therefore keep every root they observe, compare roots
with random edge servers or peers, and report conflicts.

The module provides:

* :class:`ConsistencyChecker` — the per-party store of observed roots, with
  conflict detection on every new observation;
* :class:`MisbehaviorReport` — the portable evidence (two conflicting signed
  roots) that can be handed to a software vendor;
* :class:`GossipExchange` — a minimal gossip round between two parties, as
  suggested in §V (Chuat et al.-style root exchange).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.crypto.signing import PublicKey
from repro.dictionary.signed_root import SignedRoot
from repro.errors import MisbehaviorDetected


@dataclass(frozen=True)
class MisbehaviorReport:
    """Cryptographic evidence that a CA equivocated about its dictionary."""

    ca_name: str
    first: SignedRoot
    second: SignedRoot
    detected_by: str

    def is_valid_evidence(self, ca_public_key: PublicKey) -> bool:
        """Evidence is valid when both roots verify and genuinely conflict."""
        return (
            self.first.verify(ca_public_key)
            and self.second.verify(ca_public_key)
            and self.first.conflicts_with(self.second)
        )


class ConsistencyChecker:
    """Stores observed signed roots and flags equivocation."""

    def __init__(self, owner: str) -> None:
        self.owner = owner
        #: ca_name -> {dictionary size -> first root observed at that size}
        self._roots: Dict[str, Dict[int, SignedRoot]] = {}
        self.reports: List[MisbehaviorReport] = []
        self.roots_observed = 0

    def observe_root(self, root: SignedRoot) -> Optional[MisbehaviorReport]:
        """Record a root; returns a report if it conflicts with a stored one."""
        self.roots_observed += 1
        by_size = self._roots.setdefault(root.ca_name, {})
        existing = by_size.get(root.size)
        if existing is None:
            by_size[root.size] = root
            return None
        if existing.conflicts_with(root):
            report = MisbehaviorReport(
                ca_name=root.ca_name,
                first=existing,
                second=root,
                detected_by=self.owner,
            )
            self.reports.append(report)
            return report
        return None

    def observe_or_raise(self, root: SignedRoot) -> None:
        """Like :meth:`observe_root` but raises on detected misbehavior."""
        report = self.observe_root(root)
        if report is not None:
            raise MisbehaviorDetected(
                f"CA {root.ca_name!r} equivocated at dictionary size {root.size}",
                evidence=report,
            )

    def latest_root(self, ca_name: str) -> Optional[SignedRoot]:
        by_size = self._roots.get(ca_name)
        if not by_size:
            return None
        return by_size[max(by_size)]

    def known_roots(self, ca_name: str) -> List[SignedRoot]:
        return [self._roots[ca_name][size] for size in sorted(self._roots.get(ca_name, {}))]

    def has_detected_misbehavior(self, ca_name: Optional[str] = None) -> bool:
        if ca_name is None:
            return bool(self.reports)
        return any(report.ca_name == ca_name for report in self.reports)


@dataclass
class GossipExchange:
    """One gossip round: two parties swap their latest roots per CA."""

    reports: List[MisbehaviorReport] = field(default_factory=list)

    def exchange(self, left: ConsistencyChecker, right: ConsistencyChecker) -> List[MisbehaviorReport]:
        """Swap every known root both ways; returns any new reports."""
        new_reports: List[MisbehaviorReport] = []
        for source, sink in ((left, right), (right, left)):
            for ca_name in list(source._roots):
                for root in source.known_roots(ca_name):
                    report = sink.observe_root(root)
                    if report is not None:
                        new_reports.append(report)
        self.reports.extend(new_reports)
        return new_reports


def cross_check_edge(
    checker: ConsistencyChecker, edge_roots: List[SignedRoot]
) -> List[MisbehaviorReport]:
    """Compare a party's view with roots downloaded from a (random) edge server."""
    reports: List[MisbehaviorReport] = []
    for root in edge_roots:
        report = checker.observe_root(root)
        if report is not None:
            reports.append(report)
    return reports
