"""Consistency checking and CA accountability (paper §III "Consistency
Checking" and §V "Misbehaving CA").

Because dictionaries are append-only and every signed root binds one exact
dictionary version, a CA that shows different dictionary contents to
different parts of the system must eventually produce two different signed
roots with the same size — cryptographic evidence of equivocation.  RAs keep
every root they observe, cross-check roots with their peers every Δ period
(the gossip ring the scenario runner drives), and report conflicts.

This module is always-on control-plane infrastructure, not a study-phase
accessory: every dissemination pull feeds the observed root into the RA's
:class:`ConsistencyChecker`, and the scenario runner gossips agent views once
per period so an equivocating CA is caught within one gossip round.

The module provides:

* :class:`ConsistencyChecker` — the per-party store of observed roots, with
  conflict detection on every new observation and optional reporter signing;
* :class:`MisbehaviorReport` — the portable evidence (two conflicting signed
  roots, countersigned by the detecting party) that can be handed to a
  software vendor;
* :class:`GossipExchange` — a minimal gossip round between two parties, as
  suggested in §V (Chuat et al.-style root exchange).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.crypto.signing import KeyPair, PublicKey, acceptable_verifiers
from repro.dictionary.signed_root import SignedRoot
from repro.errors import MisbehaviorDetected


@dataclass(frozen=True)
class MisbehaviorReport:
    """Cryptographic evidence that a CA equivocated about its dictionary.

    The two conflicting roots are self-certifying (each carries the CA's own
    signature); ``reporter_signature`` additionally binds the evidence to the
    detecting party so a vendor can attribute — and rate-limit — reports.
    """

    ca_name: str
    first: SignedRoot
    second: SignedRoot
    detected_by: str
    #: Public key bytes of the reporting party (empty when unsigned).
    reporter_key_bytes: bytes = b""
    #: Reporter's Ed25519 signature over :meth:`payload` (empty when unsigned).
    reporter_signature: bytes = b""

    def payload(self) -> bytes:
        """The bytes the reporter countersigns: both roots, fully attributed."""
        return b"".join(
            (
                b"ritm-misbehavior-report:",
                self.ca_name.encode("utf-8"),
                b"|",
                self.detected_by.encode("utf-8"),
                b"|",
                self.first.payload(),
                self.first.signature,
                b"|",
                self.second.payload(),
                self.second.signature,
            )
        )

    def sign(self, reporter_keys: KeyPair) -> "MisbehaviorReport":
        """A copy countersigned by the detecting party's reporter key."""
        return replace(
            self,
            reporter_key_bytes=reporter_keys.public.key_bytes,
            reporter_signature=reporter_keys.private.sign(self.payload()),
        )

    def verify_reporter(self, reporter_public_key: Optional[PublicKey] = None) -> bool:
        """True when the reporter countersignature checks out.

        With no argument the embedded ``reporter_key_bytes`` are used (the
        report is then self-attributing); pass a key to additionally pin the
        expected reporter identity.
        """
        if not self.reporter_signature or not self.reporter_key_bytes:
            return False
        if reporter_public_key is None:
            reporter_public_key = PublicKey(self.reporter_key_bytes)
        elif reporter_public_key.key_bytes != self.reporter_key_bytes:
            return False
        return reporter_public_key.verify(self.payload(), self.reporter_signature)

    def is_valid_evidence(self, ca_public_key) -> bool:
        """Evidence is valid when both roots verify and genuinely conflict.

        ``ca_public_key`` may be a bare :class:`PublicKey` or a
        :class:`~repro.crypto.signing.CAKeyring`.  With a keyring, each root
        may verify under *any* currently acceptable key — evidence gathered
        just before a rotation (signed by the now-retired key) stays valid
        throughout the overlap window even though the active key has moved on.
        """
        keys = acceptable_verifiers(ca_public_key)
        return (
            any(self.first.verify(key) for key in keys)
            and any(self.second.verify(key) for key in keys)
            and self.first.conflicts_with(self.second)
        )


class ConsistencyChecker:
    """Stores observed signed roots and flags equivocation.

    When constructed with ``reporter_keys``, every emitted
    :class:`MisbehaviorReport` is countersigned at creation so the evidence
    leaves the detector already attributable.
    """

    def __init__(self, owner: str, reporter_keys: Optional[KeyPair] = None) -> None:
        self.owner = owner
        self.reporter_keys = reporter_keys
        #: ca_name -> {dictionary size -> first root observed at that size}
        self._roots: Dict[str, Dict[int, SignedRoot]] = {}
        self.reports: List[MisbehaviorReport] = []
        self.roots_observed = 0

    def observe_root(self, root: SignedRoot) -> Optional[MisbehaviorReport]:
        """Record a root; returns a report if it conflicts with a stored one."""
        self.roots_observed += 1
        by_size = self._roots.setdefault(root.ca_name, {})
        existing = by_size.get(root.size)
        if existing is None:
            by_size[root.size] = root
            return None
        if existing.conflicts_with(root):
            report = MisbehaviorReport(
                ca_name=root.ca_name,
                first=existing,
                second=root,
                detected_by=self.owner,
            )
            if self.reporter_keys is not None:
                report = report.sign(self.reporter_keys)
            self.reports.append(report)
            return report
        return None

    def observe_or_raise(self, root: SignedRoot) -> None:
        """Like :meth:`observe_root` but raises on detected misbehavior."""
        report = self.observe_root(root)
        if report is not None:
            raise MisbehaviorDetected(
                f"CA {root.ca_name!r} equivocated at dictionary size {root.size}",
                evidence=report,
            )

    def latest_root(self, ca_name: str) -> Optional[SignedRoot]:
        """The largest-size root observed for ``ca_name`` (None if none)."""
        by_size = self._roots.get(ca_name)
        if not by_size:
            return None
        return by_size[max(by_size)]

    def known_roots(self, ca_name: str) -> List[SignedRoot]:
        """Every stored root for ``ca_name``, ordered by dictionary size."""
        return [self._roots[ca_name][size] for size in sorted(self._roots.get(ca_name, {}))]

    def has_detected_misbehavior(self, ca_name: Optional[str] = None) -> bool:
        """Whether any report exists (optionally filtered to one CA)."""
        if ca_name is None:
            return bool(self.reports)
        return any(report.ca_name == ca_name for report in self.reports)


@dataclass
class GossipExchange:
    """One gossip round: two parties swap their latest roots per CA."""

    reports: List[MisbehaviorReport] = field(default_factory=list)

    def exchange(self, left: ConsistencyChecker, right: ConsistencyChecker) -> List[MisbehaviorReport]:
        """Swap every known root both ways; returns any new reports."""
        new_reports: List[MisbehaviorReport] = []
        for source, sink in ((left, right), (right, left)):
            for ca_name in list(source._roots):
                for root in source.known_roots(ca_name):
                    report = sink.observe_root(root)
                    if report is not None:
                        new_reports.append(report)
        self.reports.extend(new_reports)
        return new_reports


def cross_check_edge(
    checker: ConsistencyChecker, edge_roots: List[SignedRoot]
) -> List[MisbehaviorReport]:
    """Compare a party's view with roots downloaded from a (random) edge server."""
    reports: List[MisbehaviorReport] = []
    for root in edge_roots:
        report = checker.observe_root(root)
        if report is not None:
            reports.append(report)
    return reports
