"""The RITM-enabled certification authority.

Wraps a :class:`~repro.pki.ca.CertificationAuthority` (issuance half) with
the RITM half: the CA's master authenticated dictionary, the Δ-periodic
refresh duty, and publication of dissemination objects to the CDN.

Published object layout (per CA):

* ``/ritm/<ca>/head``          — the small polling object: size, signed root,
  latest freshness statement (pulled by every RA every Δ);
* ``/ritm/<ca>/issuance/<k>``  — the k-th revocation batch (pulled only by
  RAs that detect they are behind);
* ``/ritm/<ca>/manifest``      — the bootstrap manifest of §VIII
  ("/RITM.json"): where the dictionary lives and which Δ the CA uses.

In **sharded mode** (``RITMConfig.sharded``, §VIII "Ever-growing
dictionaries") the single master dictionary is replaced by a
:class:`~repro.dictionary.sharding.ShardedCADictionary` and the layout gains
one level: each expiry shard publishes its *own* head and issuance objects
under its shard name (``/ritm/<ca>#expiry-<i>/head`` …), and a small

* ``/ritm/<ca>/shards``        — shard index object

lists the live and retired shard indices so RAs can discover new shards and
delete replicas of retired ones.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Tuple

from repro.cdn.network import CDNNetwork
from repro.crypto.signing import CAKeyring, KeyPair
from repro.dictionary.authdict import CADictionary, RevocationIssuance
from repro.dictionary.freshness import FreshnessStatement
from repro.dictionary.proofs import RevocationStatus
from repro.dictionary.sharding import ShardKey, ShardedCADictionary, shard_name
from repro.dictionary.signed_root import SignedRoot
from repro.dictionary.sync import SyncServer
from repro.errors import DictionaryError
from repro.pki.ca import CertificationAuthority
from repro.pki.serial import SerialNumber
from repro.ritm.config import RITMConfig
from repro.ritm.messages import (
    DictionaryHead,
    KeyAnnouncement,
    ShardIndex,
    encode_head,
    encode_issuance,
    encode_key_announcements,
    encode_shard_index,
)
from repro.ritm.replication import ReplicationLog, segment_path


def head_path(ca_name: str) -> str:
    return f"/ritm/{ca_name}/head"


def issuance_path(ca_name: str, batch_number: int) -> str:
    return f"/ritm/{ca_name}/issuance/{batch_number}"


def manifest_path(ca_name: str) -> str:
    return f"/ritm/{ca_name}/manifest"


def shard_index_path(ca_name: str) -> str:
    """CDN path of the shard discovery object (sharded mode only)."""
    return f"/ritm/{ca_name}/shards"


def keys_path(ca_name: str) -> str:
    """CDN path of the CA's key-rotation announcement chain."""
    return f"/ritm/{ca_name}/keys"


@dataclass
class PublicationStats:
    """Bytes and object counts the CA has pushed to the distribution point."""

    heads_published: int = 0
    issuances_published: int = 0
    bytes_uploaded: int = 0


class RITMCertificationAuthority:
    """A CA participating in RITM: dictionary owner and CDN publisher."""

    def __init__(
        self,
        authority: CertificationAuthority,
        config: Optional[RITMConfig] = None,
        cdn: Optional[CDNNetwork] = None,
    ) -> None:
        self.authority = authority
        self.config = config if config is not None else RITMConfig()
        self.cdn = cdn
        self.publication_stats = PublicationStats()
        self._batch_counter = 0
        # Dictionary-signing keys start as the authority's long-term keys
        # (epoch 0, the out-of-band trust anchor) and rotate on the
        # configured schedule; retired pairs are retained so the attack
        # scenarios can forge with them.
        self._signing_keys: KeyPair = self._keys_of(authority)
        self._retired_signing_keys: List[KeyPair] = []
        self._keyring = CAKeyring.single(self._signing_keys.public)
        genesis = KeyAnnouncement(
            ca_name=authority.name,
            key_epoch=0,
            public_key_bytes=self._signing_keys.public.key_bytes,
            activated_at=0,
            overlap_seconds=0,
        )
        self._announcements: List[KeyAnnouncement] = [
            replace(genesis, signature=self._signing_keys.sign(genesis.payload()))
        ]
        #: Per-dictionary-name publication counters stamped into heads.
        self._sequences: Dict[str, int] = {}
        self._index_sequence = 0
        self._refresh_count = 0
        #: The CA→RA replication stream: one signed WAL segment per batch
        #: (docs/REPLICATION.md).  Unsharded mode only for now — sharded
        #: deployments keep the per-shard issuance objects as their stream.
        self.replication: Optional[ReplicationLog] = None
        if self.config.sharded:
            self.dictionary = None
            self.sync_server = None
            self.shards = ShardedCADictionary(
                ca_name=authority.name,
                keys=self._keys_of(authority),
                delta=self.config.delta_seconds,
                chain_length=self.config.chain_length,
                shard_seconds=self.config.shard_width_seconds,
                digest_size=self.config.digest_size,
                engine=self.config.store_engine,
            )
            self._shard_sync: Dict[int, SyncServer] = {}
            self._shard_batches: Dict[int, int] = {}
        else:
            self.shards = None
            self.dictionary = CADictionary(
                ca_name=authority.name,
                keys=self._keys_of(authority),
                delta=self.config.delta_seconds,
                chain_length=self.config.chain_length,
                digest_size=self.config.digest_size,
                engine=self.config.store_engine,
            )
            self.sync_server = SyncServer(self.dictionary)
            self.replication = ReplicationLog(authority.name)

    @staticmethod
    def _keys_of(authority: CertificationAuthority):
        # The issuance CA object keeps its key pair private by convention; the
        # RITM service is part of the same trust domain and reuses it.
        return authority._keys  # noqa: SLF001 - intentional same-trust-domain access

    # -- identity -----------------------------------------------------------------

    @property
    def name(self) -> str:
        return self.authority.name

    @property
    def public_key(self):
        """The *genesis* verification key — RAs' out-of-band trust anchor.

        This is deliberately the epoch-0 key even after rotations: RAs are
        configured with it once and extend trust to later keys through the
        signed announcement chain, never through reconfiguration.
        """
        return self.authority.public_key

    @property
    def signing_public_key(self):
        """The currently-active dictionary-signing key (rotates)."""
        return self._signing_keys.public

    @property
    def keyring(self) -> CAKeyring:
        """The CA's own time-scoped keyring across every rotation so far."""
        return self._keyring

    @property
    def key_announcements(self) -> Tuple[KeyAnnouncement, ...]:
        """The signed rotation chain, genesis first."""
        return tuple(self._announcements)

    @property
    def key_epoch(self) -> int:
        """How many rotations have happened (0 = still on the genesis key)."""
        return len(self._announcements) - 1

    @property
    def sharded(self) -> bool:
        """Whether this CA runs expiry-split dictionaries (§VIII)."""
        return self.config.sharded

    # -- bootstrap ------------------------------------------------------------------

    def bootstrap(self, now: float) -> Optional[SignedRoot]:
        """Sign the initial (possibly empty) dictionary and publish everything.

        In sharded mode there is no single dictionary to sign up front —
        shards appear with their first revocation — so bootstrap publishes
        the manifest and an (empty) shard index and returns ``None``.
        """
        if self.sharded:
            self._publish_manifest(now)
            self._publish_shard_index(now)
            return None
        result = self.dictionary.refresh(int(now))
        if not isinstance(result, SignedRoot):
            raise DictionaryError("bootstrap expected a signed root")
        self._publish_manifest(now)
        self._publish_head(now)
        return result

    # -- revocation -----------------------------------------------------------------

    def revoke(
        self, serials: Iterable[SerialNumber], now: float, reason: str = "unspecified"
    ) -> RevocationIssuance:
        """Revoke serials, update the dictionary, and publish the new batch.

        In sharded mode every revocation needs the certificate's expiry to
        pick a shard; this convenience wrapper looks the expiry up in the
        issuance CA's records, delegates to :meth:`revoke_with_expiry`, and
        returns the *last* touched shard's issuance (all batches are still
        published).  Callers revoking serials that may span several shards
        should use :meth:`revoke_with_expiry` directly, which returns every
        per-shard issuance.
        """
        if self.sharded:
            pairs = []
            for serial in serials:
                certificate = self.authority.certificate_for(serial)
                if certificate is None:
                    raise DictionaryError(
                        f"sharded CA {self.name!r} cannot derive an expiry for "
                        f"serial {serial} (not issued here); use revoke_with_expiry"
                    )
                pairs.append((serial, certificate.not_after))
            issuances = self.revoke_with_expiry(pairs, now, reason=reason)
            return issuances[-1][1]
        serial_list = list(serials)
        for serial in serial_list:
            self.authority.revoke(serial, now=int(now), reason=reason)
        issuance = self.dictionary.insert(serial_list, int(now))
        self.sync_server.record_issuance(issuance)
        self._batch_counter += 1
        if self.cdn is not None:
            content = encode_issuance(issuance)
            self.cdn.publish(
                issuance_path(self.name, self._batch_counter),
                content,
                now,
                ttl_seconds=self.config.cdn_ttl_seconds,
            )
            self.publication_stats.issuances_published += 1
            self.publication_stats.bytes_uploaded += len(content)
        # Replication stream: the same batch, framed as a signed WAL
        # segment.  Segment numbers advance in lockstep with the batch
        # counter, so RA-side replication cursors and applied-batch cursors
        # describe the same position in the revocation history.
        segment = self.replication.append(
            issuance, self.dictionary.latest_freshness, self._signing_keys
        )
        if self.cdn is not None:
            self.cdn.publish(
                segment_path(self.name, self._batch_counter),
                segment,
                now,
                ttl_seconds=self.config.cdn_ttl_seconds,
            )
        self._publish_head(now)
        return issuance

    def revoke_with_expiry(
        self,
        serials_with_expiry: Iterable[Tuple[SerialNumber, int]],
        now: float,
        reason: str = "unspecified",
    ) -> List[Tuple[ShardKey, RevocationIssuance]]:
        """Revoke (serial, expiry) pairs in sharded mode and publish per shard.

        Each touched shard gets one issuance batch published under its own
        shard name plus a refreshed head object; the shard index is
        republished when a new shard appears so RAs can discover it on their
        next pull.
        """
        if not self.sharded:
            raise DictionaryError(
                f"CA {self.name!r} is not sharded; use revoke() instead"
            )
        pairs = list(serials_with_expiry)
        if not pairs:
            raise DictionaryError("a revocation batch needs at least one serial")
        # Validate the whole batch — expiries and duplicate serials — before
        # the issuance CA records anything, so a rejected batch leaves both
        # halves untouched and retryable.
        routed = self.shards.validate_expiries(pairs, int(now))
        seen = set()
        for serial, _ in pairs:
            if serial.value in seen or self.authority.is_revoked(serial):
                raise DictionaryError(
                    f"serial {serial} is already revoked by {self.name!r}"
                )
            seen.add(serial.value)
        for serial, _ in pairs:
            self.authority.revoke(serial, now=int(now), reason=reason)
        shards_before = self.shards.shard_count
        issuances = self.shards.revoke(pairs, int(now), routed=routed)
        for key, issuance in issuances:
            self._sync_server_for(key.index).record_issuance(issuance)
            self._shard_batches[key.index] = self._shard_batches.get(key.index, 0) + 1
            self._batch_counter += 1
            if self.cdn is not None:
                content = encode_issuance(issuance)
                self.cdn.publish(
                    issuance_path(shard_name(self.name, key.index), self._shard_batches[key.index]),
                    content,
                    now,
                    ttl_seconds=self.config.cdn_ttl_seconds,
                )
                self.publication_stats.issuances_published += 1
                self.publication_stats.bytes_uploaded += len(content)
            self._publish_shard_head(key.index, now)
        if self.shards.shard_count != shards_before:
            self._publish_shard_index(now)
        return issuances

    # -- periodic duty -------------------------------------------------------------------

    def refresh(self, now: float):
        """The CA's every-Δ duty: freshness statement (or a re-signed root).

        In sharded mode every live shard is refreshed and its head
        republished; every :attr:`RITMConfig.prune_every_periods` refreshes
        the CA also retires shards whose expiry window has fully passed
        (dropping their storage) and republishes the shard index.
        """
        if self.sharded:
            self._refresh_count += 1
            results = self.shards.refresh_all(int(now))
            for index in results:
                self._publish_shard_head(index, now)
            if self._refresh_count % self.config.prune_every_periods == 0:
                retired = self.retire_expired(now)
                if retired:
                    self._publish_shard_index(now)
            return results
        self._refresh_count += 1
        rotation = self.config.key_rotation_periods
        if rotation and self._refresh_count % rotation == 0:
            result = self.rotate_keys(now)
        else:
            result = self.dictionary.refresh(int(now))
        self._publish_head(now)
        return result

    def rotate_keys(self, now: float) -> SignedRoot:
        """Retire the active dictionary-signing key and enroll a fresh one.

        The new key is announced in a :class:`KeyAnnouncement` signed by the
        *outgoing* key (extending the chain RAs validate from the genesis
        anchor), the current dictionary content is immediately re-signed
        under the new key, and both the announcement chain and the head are
        republished.  The outgoing key keeps verifying for
        :attr:`RITMConfig.key_overlap_seconds`.
        """
        if self.sharded:
            raise DictionaryError(
                f"sharded CA {self.name!r} does not support key rotation yet"
            )
        epoch = len(self._announcements)
        new_keys = KeyPair.generate(
            rng_seed=f"{self.name}:key-epoch-{epoch}".encode("utf-8")
        )
        announcement = KeyAnnouncement(
            ca_name=self.name,
            key_epoch=epoch,
            public_key_bytes=new_keys.public.key_bytes,
            activated_at=int(now),
            overlap_seconds=self.config.key_overlap_seconds,
        )
        announcement = replace(
            announcement, signature=self._signing_keys.sign(announcement.payload())
        )
        self._announcements.append(announcement)
        self._retired_signing_keys.append(self._signing_keys)
        self._signing_keys = new_keys
        self._keyring.add_key(
            new_keys.public,
            activated_at=int(now),
            overlap_seconds=self.config.key_overlap_seconds,
        )
        result = self.dictionary.rotate_keys(new_keys, int(now))
        self._publish_key_announcements(now)
        return result

    def retire_expired(self, now: float) -> List[ShardKey]:
        """Drop shards whose window has passed, with their sync state."""
        if not self.sharded:
            return []
        retired = self.shards.retire_expired(now)
        for key in retired:
            self._shard_sync.pop(key.index, None)
        return retired

    # -- views -----------------------------------------------------------------------------

    def head(self) -> DictionaryHead:
        if self.sharded:
            raise DictionaryError(
                f"sharded CA {self.name!r} has per-shard heads; use shard_head()"
            )
        signed_root = self.dictionary.signed_root
        freshness = self.dictionary.latest_freshness
        if signed_root is None or freshness is None:
            raise DictionaryError(f"CA {self.name!r} has not been bootstrapped yet")
        return DictionaryHead(
            ca_name=self.name,
            size=self.dictionary.size,
            signed_root=signed_root,
            freshness=freshness,
            sequence=self._sequences.get(self.name, 0),
        )

    def shard_head(self, shard_index: int) -> DictionaryHead:
        """The polling object of one expiry shard (sharded mode only)."""
        if not self.sharded:
            raise DictionaryError(f"CA {self.name!r} is not sharded; use head()")
        shard = self.shards.shard_at(shard_index)
        if shard is None or shard.signed_root is None or shard.latest_freshness is None:
            raise DictionaryError(
                f"CA {self.name!r} has no published shard {shard_index}"
            )
        return DictionaryHead(
            ca_name=shard.ca_name,
            size=shard.size,
            signed_root=shard.signed_root,
            freshness=shard.latest_freshness,
            sequence=self._sequences.get(shard.ca_name, 0),
        )

    #: Most recent retired shard indices carried in the published index; the
    #: wire object must stay O(live shards), not grow with the CA's history.
    RETIRED_INDICES_PUBLISHED = 16

    def shard_index(self, now: float) -> ShardIndex:
        """The shard discovery object: live and recently retired indices."""
        if not self.sharded:
            raise DictionaryError(f"CA {self.name!r} is not sharded")
        return ShardIndex(
            ca_name=self.name,
            width_seconds=self.config.shard_width_seconds,
            live=tuple(self.shards.live_shard_indices(now)),
            retired=tuple(
                self.shards.retired_indices()[-self.RETIRED_INDICES_PUBLISHED:]
            ),
            sequence=self._index_sequence,
        )

    def sync_server_for(self, shard_index: int) -> Optional[SyncServer]:
        """The per-shard sync endpoint (``None`` for unknown shards)."""
        if not self.sharded:
            return self.sync_server
        if self.shards.shard_at(shard_index) is None:
            return None
        return self._sync_server_for(shard_index)

    def prove_status(
        self, serial: SerialNumber, expiry: int, now: Optional[int] = None
    ) -> RevocationStatus:
        """Revocation status from the master copy, expiry-aware in sharded mode."""
        if self.sharded:
            return self.shards.prove(serial, expiry, now=now)
        return self.dictionary.prove(serial)

    def total_revocations(self) -> int:
        """Entries in the master dictionary (live shards only when sharded)."""
        if self.sharded:
            return self.shards.total_revocations()
        return self.dictionary.size

    def storage_size_bytes(self) -> int:
        """Per-entry storage of the master copy (live shards when sharded)."""
        if self.sharded:
            return self.shards.storage_size_bytes()
        return self.dictionary.storage_size_bytes()

    def issuance_count(self) -> int:
        return self._batch_counter

    def close(self) -> None:
        """Close the master dictionary's (or every shard's) backing store.

        Part of the store-lifecycle contract introduced with the durable
        engine (``docs/STORAGE.md``); in-memory engines treat it as a no-op.
        """
        if self.sharded:
            self.shards.close()
        else:
            self.dictionary.close()

    def manifest(self) -> dict:
        """The §VIII bootstrap manifest (would live at ``/RITM.json``)."""
        manifest = {
            "ca": self.name,
            "delta_seconds": self.config.delta_seconds,
            "head": head_path(self.name),
            "issuance_prefix": f"/ritm/{self.name}/issuance/",
        }
        if self.sharded:
            manifest["sharded"] = True
            manifest["shard_width_seconds"] = self.config.shard_width_seconds
            manifest["shard_index"] = shard_index_path(self.name)
        return manifest

    # -- internals ------------------------------------------------------------------------------

    def _publish_head(self, now: float) -> None:
        if self.cdn is None:
            return
        # The publication sequence advances exactly once per publish, so a
        # replayed copy of an earlier object is detectably behind.
        self._sequences[self.name] = self._sequences.get(self.name, 0) + 1
        content = encode_head(self.head())
        self.cdn.publish(
            head_path(self.name), content, now, ttl_seconds=self.config.cdn_ttl_seconds
        )
        self.publication_stats.heads_published += 1
        self.publication_stats.bytes_uploaded += len(content)

    def _publish_key_announcements(self, now: float) -> None:
        """Publish the full signed rotation chain at :func:`keys_path`."""
        if self.cdn is None:
            return
        content = encode_key_announcements(tuple(self._announcements))
        self.cdn.publish(
            keys_path(self.name),
            content,
            now,
            ttl_seconds=self.config.cdn_ttl_seconds,
        )
        self.publication_stats.bytes_uploaded += len(content)

    def _publish_manifest(self, now: float) -> None:
        if self.cdn is None:
            return
        content = json.dumps(self.manifest()).encode("utf-8")
        self.cdn.publish(manifest_path(self.name), content, now, ttl_seconds=86_400.0)
        self.publication_stats.bytes_uploaded += len(content)

    def _sync_server_for(self, shard_index: int) -> SyncServer:
        """The (possibly newly created) sync server of one shard."""
        if shard_index not in self._shard_sync:
            shard = self.shards.shard_at(shard_index)
            if shard is None:
                raise DictionaryError(
                    f"CA {self.name!r} has no shard {shard_index} to sync from"
                )
            self._shard_sync[shard_index] = SyncServer(shard)
        return self._shard_sync[shard_index]

    def _publish_shard_head(self, shard_index: int, now: float) -> None:
        """Publish one shard's head object under its shard name."""
        if self.cdn is None:
            return
        name = shard_name(self.name, shard_index)
        self._sequences[name] = self._sequences.get(name, 0) + 1
        content = encode_head(self.shard_head(shard_index))
        self.cdn.publish(
            head_path(shard_name(self.name, shard_index)),
            content,
            now,
            ttl_seconds=self.config.cdn_ttl_seconds,
        )
        self.publication_stats.heads_published += 1
        self.publication_stats.bytes_uploaded += len(content)

    def _publish_shard_index(self, now: float) -> None:
        """Publish the shard discovery object."""
        if self.cdn is None:
            return
        self._index_sequence += 1
        content = encode_shard_index(self.shard_index(now))
        self.cdn.publish(
            shard_index_path(self.name),
            content,
            now,
            ttl_seconds=self.config.cdn_ttl_seconds,
        )
        self.publication_stats.bytes_uploaded += len(content)
