"""The RITM-enabled certification authority.

Wraps a :class:`~repro.pki.ca.CertificationAuthority` (issuance half) with
the RITM half: the CA's master authenticated dictionary, the Δ-periodic
refresh duty, and publication of dissemination objects to the CDN.

Published object layout (per CA):

* ``/ritm/<ca>/head``          — the small polling object: size, signed root,
  latest freshness statement (pulled by every RA every Δ);
* ``/ritm/<ca>/issuance/<k>``  — the k-th revocation batch (pulled only by
  RAs that detect they are behind);
* ``/ritm/<ca>/manifest``      — the bootstrap manifest of §VIII
  ("/RITM.json"): where the dictionary lives and which Δ the CA uses.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.cdn.network import CDNNetwork
from repro.dictionary.authdict import CADictionary, RevocationIssuance
from repro.dictionary.freshness import FreshnessStatement
from repro.dictionary.signed_root import SignedRoot
from repro.dictionary.sync import SyncServer
from repro.errors import DictionaryError
from repro.pki.ca import CertificationAuthority
from repro.pki.serial import SerialNumber
from repro.ritm.config import RITMConfig
from repro.ritm.messages import DictionaryHead, encode_head, encode_issuance


def head_path(ca_name: str) -> str:
    return f"/ritm/{ca_name}/head"


def issuance_path(ca_name: str, batch_number: int) -> str:
    return f"/ritm/{ca_name}/issuance/{batch_number}"


def manifest_path(ca_name: str) -> str:
    return f"/ritm/{ca_name}/manifest"


@dataclass
class PublicationStats:
    """Bytes and object counts the CA has pushed to the distribution point."""

    heads_published: int = 0
    issuances_published: int = 0
    bytes_uploaded: int = 0


class RITMCertificationAuthority:
    """A CA participating in RITM: dictionary owner and CDN publisher."""

    def __init__(
        self,
        authority: CertificationAuthority,
        config: Optional[RITMConfig] = None,
        cdn: Optional[CDNNetwork] = None,
    ) -> None:
        self.authority = authority
        self.config = config if config is not None else RITMConfig()
        self.cdn = cdn
        self.dictionary = CADictionary(
            ca_name=authority.name,
            keys=self._keys_of(authority),
            delta=self.config.delta_seconds,
            chain_length=self.config.chain_length,
            digest_size=self.config.digest_size,
            engine=self.config.store_engine,
        )
        self.sync_server = SyncServer(self.dictionary)
        self.publication_stats = PublicationStats()
        self._batch_counter = 0

    @staticmethod
    def _keys_of(authority: CertificationAuthority):
        # The issuance CA object keeps its key pair private by convention; the
        # RITM service is part of the same trust domain and reuses it.
        return authority._keys  # noqa: SLF001 - intentional same-trust-domain access

    # -- identity -----------------------------------------------------------------

    @property
    def name(self) -> str:
        return self.authority.name

    @property
    def public_key(self):
        return self.authority.public_key

    # -- bootstrap ------------------------------------------------------------------

    def bootstrap(self, now: float) -> SignedRoot:
        """Sign the initial (possibly empty) dictionary and publish everything."""
        result = self.dictionary.refresh(int(now))
        if not isinstance(result, SignedRoot):
            raise DictionaryError("bootstrap expected a signed root")
        self._publish_manifest(now)
        self._publish_head(now)
        return result

    # -- revocation -----------------------------------------------------------------

    def revoke(
        self, serials: Iterable[SerialNumber], now: float, reason: str = "unspecified"
    ) -> RevocationIssuance:
        """Revoke serials, update the dictionary, and publish the new batch."""
        serial_list = list(serials)
        for serial in serial_list:
            self.authority.revoke(serial, now=int(now), reason=reason)
        issuance = self.dictionary.insert(serial_list, int(now))
        self.sync_server.record_issuance(issuance)
        self._batch_counter += 1
        if self.cdn is not None:
            content = encode_issuance(issuance)
            self.cdn.publish(
                issuance_path(self.name, self._batch_counter),
                content,
                now,
                ttl_seconds=self.config.cdn_ttl_seconds,
            )
            self.publication_stats.issuances_published += 1
            self.publication_stats.bytes_uploaded += len(content)
        self._publish_head(now)
        return issuance

    # -- periodic duty -------------------------------------------------------------------

    def refresh(self, now: float):
        """The CA's every-Δ duty: freshness statement (or a re-signed root)."""
        result = self.dictionary.refresh(int(now))
        self._publish_head(now)
        return result

    # -- views -----------------------------------------------------------------------------

    def head(self) -> DictionaryHead:
        signed_root = self.dictionary.signed_root
        freshness = self.dictionary.latest_freshness
        if signed_root is None or freshness is None:
            raise DictionaryError(f"CA {self.name!r} has not been bootstrapped yet")
        return DictionaryHead(
            ca_name=self.name,
            size=self.dictionary.size,
            signed_root=signed_root,
            freshness=freshness,
        )

    def issuance_count(self) -> int:
        return self._batch_counter

    def manifest(self) -> dict:
        """The §VIII bootstrap manifest (would live at ``/RITM.json``)."""
        return {
            "ca": self.name,
            "delta_seconds": self.config.delta_seconds,
            "head": head_path(self.name),
            "issuance_prefix": f"/ritm/{self.name}/issuance/",
        }

    # -- internals ------------------------------------------------------------------------------

    def _publish_head(self, now: float) -> None:
        if self.cdn is None:
            return
        content = encode_head(self.head())
        self.cdn.publish(
            head_path(self.name), content, now, ttl_seconds=self.config.cdn_ttl_seconds
        )
        self.publication_stats.heads_published += 1
        self.publication_stats.bytes_uploaded += len(content)

    def _publish_manifest(self, now: float) -> None:
        if self.cdn is None:
            return
        content = json.dumps(self.manifest()).encode("utf-8")
        self.cdn.publish(manifest_path(self.name), content, now, ttl_seconds=86_400.0)
        self.publication_stats.bytes_uploaded += len(content)
