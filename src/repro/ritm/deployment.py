"""Deployment models (paper §IV): wiring clients, RAs, and servers into paths.

Two placements are modelled:

* **close to the client** — the RA sits at the gateway of the client's access
  network; all of the client's TLS traffic crosses it, and the network
  operator vouches (out of band, e.g. authenticated DHCP) that RITM is in
  force, so the client sets ``expect_ritm_protection`` and refuses
  connections that arrive without a status;
* **close to the server** — the RA is co-located with the data-center TLS
  terminator; the terminator confirms support inside the ServerHello, which
  the client uses as its downgrade defence.

The builders return a ready-to-run :class:`~repro.net.path.PathEngine`
together with the participating endpoints, so examples, tests, and
benchmarks can set up a full RITM conversation in a couple of lines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.net.link import Link, lan_link, metro_link, wan_link
from repro.net.packet import FiveTuple, make_flow
from repro.net.path import NetworkPath, PathEngine
from repro.net.clock import SimulatedClock
from repro.pki.ca import TrustStore
from repro.pki.certificate import CertificateChain
from repro.ritm.agent import RevocationAgent
from repro.ritm.client import RITMClient
from repro.ritm.config import DeploymentModel, RITMConfig
from repro.ritm.server import RITMServer, TLSTerminator


@dataclass
class Deployment:
    """A fully wired client↔RA↔server path."""

    model: DeploymentModel
    client: RITMClient
    server: RITMServer
    agents: List[RevocationAgent]
    engine: PathEngine
    flow: FiveTuple

    def run_handshake(self, now: Optional[float] = None) -> bool:
        """Drive the TLS handshake end to end; returns client acceptance."""
        start = self.engine.clock.now() if now is None else now
        hello = self.client.client_hello_packet(self.flow, start)
        self.engine.send_from_client(hello)
        return self.client.is_connection_usable

    def deliver_from_server(self, payload: bytes) -> None:
        """Push one application-data packet from the server to the client."""
        packet = self.server.send_application_data(self.flow, payload, self.engine.clock.now())
        self.engine.send_from_server(packet)


def _client_for(
    client_ip: str,
    server_name: str,
    trust_store: TrustStore,
    ca_public_keys: Dict[str, object],
    config: RITMConfig,
    expect_protection: bool,
    root_cache=None,
    validation_cache=None,
) -> RITMClient:
    return RITMClient(
        ip_address=client_ip,
        server_name=server_name,
        trust_store=trust_store,
        ca_public_keys=ca_public_keys,
        config=config,
        expect_ritm_protection=expect_protection,
        root_cache=root_cache,
        validation_cache=validation_cache,
    )


def build_close_to_client_deployment(
    server_chain: CertificateChain,
    trust_store: TrustStore,
    ca_public_keys: Dict[str, object],
    config: Optional[RITMConfig] = None,
    agent: Optional[RevocationAgent] = None,
    client_ip: str = "12.34.56.78",
    server_ip: str = "98.76.54.32",
    clock: Optional[SimulatedClock] = None,
    extra_middleboxes: Optional[List] = None,
    root_cache=None,
    validation_cache=None,
) -> Deployment:
    """RA at the access-network gateway (the paper's Fig. 3 topology).

    ``root_cache`` / ``validation_cache`` optionally share the client-side
    hot-path caches across deployments (one household or fleet reconnecting
    to the same sites — see docs/PERFORMANCE.md); by default every
    deployment's client starts cold.
    """
    config = config if config is not None else RITMConfig(deployment=DeploymentModel.CLOSE_TO_CLIENT)
    agent = agent if agent is not None else RevocationAgent("gateway-ra", config)
    client = _client_for(
        client_ip,
        server_chain.leaf.subject,
        trust_store,
        ca_public_keys,
        config,
        True,
        root_cache=root_cache,
        validation_cache=validation_cache,
    )
    server = RITMServer(server_ip, server_chain)
    middleboxes: List = [agent]
    if extra_middleboxes:
        middleboxes.extend(extra_middleboxes)
    links: List[Link] = [lan_link()] + [wan_link() for _ in range(len(middleboxes))]
    path = NetworkPath(client=client, server=server, middleboxes=middleboxes, links=links)
    engine = PathEngine(path, clock=clock)
    flow = make_flow(client_ip, 9012, server_ip, 443)
    return Deployment(
        model=DeploymentModel.CLOSE_TO_CLIENT,
        client=client,
        server=server,
        agents=[agent],
        engine=engine,
        flow=flow,
    )


def build_close_to_server_deployment(
    server_chain: CertificateChain,
    trust_store: TrustStore,
    ca_public_keys: Dict[str, object],
    config: Optional[RITMConfig] = None,
    agent: Optional[RevocationAgent] = None,
    client_ip: str = "12.34.56.78",
    server_ip: str = "98.76.54.32",
    clock: Optional[SimulatedClock] = None,
    extra_middleboxes: Optional[List] = None,
    root_cache=None,
    validation_cache=None,
) -> Deployment:
    """RA co-located with a TLS terminator at the data-center ingress."""
    config = config if config is not None else RITMConfig(deployment=DeploymentModel.CLOSE_TO_SERVER)
    agent = agent if agent is not None else RevocationAgent("terminator-ra", config)
    client = _client_for(
        client_ip,
        server_chain.leaf.subject,
        trust_store,
        ca_public_keys,
        config,
        True,
        root_cache=root_cache,
        validation_cache=validation_cache,
    )
    server = TLSTerminator(server_ip, server_chain)
    middleboxes: List = []
    if extra_middleboxes:
        middleboxes.extend(extra_middleboxes)
    middleboxes.append(agent)  # the RA is the last hop before the terminator
    links: List[Link] = [wan_link() for _ in range(len(middleboxes))] + [lan_link()]
    path = NetworkPath(client=client, server=server, middleboxes=middleboxes, links=links)
    engine = PathEngine(path, clock=clock)
    flow = make_flow(client_ip, 9012, server_ip, 443)
    return Deployment(
        model=DeploymentModel.CLOSE_TO_SERVER,
        client=client,
        server=server,
        agents=[agent],
        engine=engine,
        flow=flow,
    )


def build_unprotected_path(
    server_chain: CertificateChain,
    trust_store: TrustStore,
    ca_public_keys: Dict[str, object],
    config: Optional[RITMConfig] = None,
    client_ip: str = "12.34.56.78",
    server_ip: str = "98.76.54.32",
    clock: Optional[SimulatedClock] = None,
) -> Deployment:
    """A path with *no* RA — used to demonstrate downgrade detection."""
    config = config if config is not None else RITMConfig()
    client = _client_for(
        client_ip, server_chain.leaf.subject, trust_store, ca_public_keys, config, True
    )
    server = RITMServer(server_ip, server_chain)
    path = NetworkPath(client=client, server=server, middleboxes=[], links=[metro_link()])
    engine = PathEngine(path, clock=clock)
    flow = make_flow(client_ip, 9012, server_ip, 443)
    return Deployment(
        model=DeploymentModel.CLOSE_TO_CLIENT,
        client=client,
        server=server,
        agents=[],
        engine=engine,
        flow=flow,
    )
