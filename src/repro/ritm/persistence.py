"""RA checkpoint files: the on-disk format behind warm crash-recovery.

A checkpoint captures everything a :class:`~repro.ritm.agent.RevocationAgent`
needs to resume serving (and delta-syncing) after a process restart without
re-downloading its dictionaries from the CA:

* ``agent.json`` — the manifest: format version, agent name, shard widths,
  the explicit shard-membership registry, and one entry per persisted
  replica (CA name, public key, file name);
* ``replica-NNNN.bin`` — one binary file per replica: the CA-signed root and
  latest freshness statement (reusing the wire codecs from
  :mod:`repro.ritm.messages`), the exact sorted leaf dump, and a trailing
  CRC32 over the whole file.

Checkpoints are *not* trusted on restore: CRCs catch corruption here, and
:meth:`~repro.dictionary.authdict.ReplicaDictionary.restore_snapshot`
re-verifies the root signature and the recomputed Merkle root, so a doctored
checkpoint can never warm-start a replica into unsigned state.  The format
is documented in ``docs/STORAGE.md``.

Format evolution: the replica file carries an explicit format version, and
from format 2 onward any bytes between the leaf dump and the trailing CRC
are a sequence of typed extension blocks (``u8 type + u32 length + body``).
Readers skip blocks they do not understand, so a checkpoint written by a
newer build (e.g. one that appends replication-cursor blocks) still
warm-starts an older agent — and a format-1 file from a pre-extension build
still loads here.  The CRC always covers the whole file, unknown blocks
included.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Tuple, Union

from repro.crypto.signing import PublicKey
from repro.dictionary.freshness import FreshnessStatement
from repro.dictionary.signed_root import SignedRoot
from repro.errors import StorageError
from repro.ritm.messages import (
    decode_freshness,
    decode_signed_root,
    encode_freshness,
    encode_signed_root,
)
from repro.store.durable import atomic_write, decode_leaf_pairs, encode_leaf_pairs

#: Replica-file magic; the manifest's ``format`` field pins the layout.
REPLICA_MAGIC = b"RITMRACP"

#: Checkpoint format version this build writes (manifest + replica files).
CHECKPOINT_FORMAT = 2

#: Every format version this build can read.  Format 1 is the pre-extension
#: layout (no trailing blocks allowed); format 2 adds the skip-unknown
#: extension-block rule after the leaf dump.
SUPPORTED_CHECKPOINT_FORMATS = (1, 2)

#: Manifest file name inside a checkpoint directory.
MANIFEST_FILENAME = "agent.json"


@dataclass
class ReplicaCheckpoint:
    """One replica's persisted state: verified root, freshness, leaf dump."""

    ca_name: str
    public_key_bytes: bytes
    signed_root: SignedRoot
    freshness: FreshnessStatement
    items: List[Tuple[bytes, bytes]]
    #: Typed extension blocks (block type → raw body) carried after the leaf
    #: dump in format ≥ 2 files.  Unknown types are preserved, not rejected.
    extensions: Dict[int, bytes] = field(default_factory=dict)

    @property
    def public_key(self) -> PublicKey:
        """The CA public key the replica verified its state under."""
        return PublicKey(self.public_key_bytes)


@dataclass
class AgentCheckpoint:
    """Everything :meth:`RevocationAgent.restore` needs, decoded from disk."""

    agent_name: str
    shard_widths: Dict[str, int] = field(default_factory=dict)
    #: CA name → shard index → replica name (the explicit shard registry).
    shard_members: Dict[str, Dict[int, str]] = field(default_factory=dict)
    replicas: List[ReplicaCheckpoint] = field(default_factory=list)
    #: CA name → rotating-keyring state: the hex-encoded validated
    #: key-announcement chain plus the keyring clock.  Optional — absent for
    #: replicas pinned to a single key and in pre-rotation checkpoints.
    keyrings: Dict[str, Dict[str, object]] = field(default_factory=dict)


def _encode_replica(checkpoint: ReplicaCheckpoint) -> bytes:
    """Serialize one replica file (magic + fields + CRC32)."""
    root_bytes = encode_signed_root(checkpoint.signed_root)
    freshness_bytes = encode_freshness(checkpoint.freshness)
    body = bytearray()
    body += REPLICA_MAGIC
    body += struct.pack(">H", CHECKPOINT_FORMAT)
    body += struct.pack(">H", len(checkpoint.public_key_bytes))
    body += checkpoint.public_key_bytes
    body += struct.pack(">I", len(root_bytes))
    body += root_bytes
    body += struct.pack(">I", len(freshness_bytes))
    body += freshness_bytes
    body += struct.pack(">Q", len(checkpoint.items))
    body += encode_leaf_pairs(checkpoint.items)
    for block_type in sorted(checkpoint.extensions):
        block = checkpoint.extensions[block_type]
        body += struct.pack(">BI", block_type, len(block))
        body += block
    body += struct.pack(">I", zlib.crc32(bytes(body)))
    return bytes(body)


def _decode_replica(data: bytes, ca_name: str) -> ReplicaCheckpoint:
    """Parse one replica file, checking magic, version, and checksum."""
    floor = len(REPLICA_MAGIC) + 2 + 4
    if len(data) < floor or not data.startswith(REPLICA_MAGIC):
        raise StorageError(f"replica checkpoint for {ca_name!r} is not valid")
    (stored_crc,) = struct.unpack_from(">I", data, len(data) - 4)
    if zlib.crc32(data[:-4]) != stored_crc:
        raise StorageError(f"replica checkpoint for {ca_name!r} failed its checksum")
    try:
        offset = len(REPLICA_MAGIC)
        (version,) = struct.unpack_from(">H", data, offset)
        offset += 2
        if version not in SUPPORTED_CHECKPOINT_FORMATS:
            raise StorageError(
                f"replica checkpoint for {ca_name!r} has format {version}; "
                f"this build reads formats {SUPPORTED_CHECKPOINT_FORMATS}"
            )
        (key_length,) = struct.unpack_from(">H", data, offset)
        offset += 2
        public_key_bytes = data[offset : offset + key_length]
        offset += key_length
        (root_length,) = struct.unpack_from(">I", data, offset)
        offset += 4
        signed_root, _ = decode_signed_root(data[offset : offset + root_length])
        offset += root_length
        (freshness_length,) = struct.unpack_from(">I", data, offset)
        offset += 4
        freshness, _ = decode_freshness(data[offset : offset + freshness_length])
        offset += freshness_length
        (leaf_count,) = struct.unpack_from(">Q", data, offset)
        offset += 8
        items, offset = decode_leaf_pairs(data, offset, leaf_count)
        extensions: Dict[int, bytes] = {}
        if version >= 2:
            # Skip-unknown extension blocks: anything between the leaf dump
            # and the CRC must parse as (u8 type, u32 length, body) frames.
            while offset < len(data) - 4:
                block_type, block_length = struct.unpack_from(">BI", data, offset)
                offset += 5
                if offset + block_length > len(data) - 4:
                    raise StorageError(
                        f"replica checkpoint for {ca_name!r} has a truncated "
                        f"extension block"
                    )
                extensions[block_type] = data[offset : offset + block_length]
                offset += block_length
        if offset != len(data) - 4:
            raise StorageError(
                f"replica checkpoint for {ca_name!r} has trailing bytes"
            )
    except struct.error as exc:
        raise StorageError(
            f"replica checkpoint for {ca_name!r} is truncated: {exc}"
        ) from None
    return ReplicaCheckpoint(
        ca_name=ca_name,
        public_key_bytes=public_key_bytes,
        signed_root=signed_root,
        freshness=freshness,
        items=items,
        extensions=extensions,
    )


def write_checkpoint(
    checkpoint: AgentCheckpoint, directory: Union[str, Path]
) -> Path:
    """Write a full agent checkpoint under ``directory``; returns its path.

    Replica files are written first and the manifest last, so a crash while
    checkpointing leaves no manifest — an incomplete checkpoint is invisible
    to :func:`load_checkpoint` rather than half-restorable.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    manifest_replicas = []
    for index, replica in enumerate(checkpoint.replicas):
        filename = f"replica-{index:04d}.bin"
        (directory / filename).write_bytes(_encode_replica(replica))
        manifest_replicas.append(
            {
                "ca_name": replica.ca_name,
                "file": filename,
                "public_key": replica.public_key_bytes.hex(),
            }
        )
    manifest = {
        "format": CHECKPOINT_FORMAT,
        "agent": checkpoint.agent_name,
        "shard_widths": dict(checkpoint.shard_widths),
        "shard_members": {
            ca: {str(index): name for index, name in members.items()}
            for ca, members in checkpoint.shard_members.items()
        },
        "replicas": manifest_replicas,
        "keyrings": {
            ca: {
                "announcements": str(state["announcements"]),
                "clock": int(state["clock"]),
            }
            for ca, state in checkpoint.keyrings.items()
        },
    }
    atomic_write(
        directory / MANIFEST_FILENAME,
        (json.dumps(manifest, indent=2, sort_keys=True) + "\n").encode("utf-8"),
    )
    return directory


def load_checkpoint(directory: Union[str, Path]) -> AgentCheckpoint:
    """Read and decode a checkpoint directory written by :func:`write_checkpoint`.

    Raises :class:`StorageError` when the manifest is missing/invalid or any
    replica file fails its structural checks.  (Cryptographic verification —
    root signature and recomputed root — happens later, in
    ``ReplicaDictionary.restore_snapshot``.)
    """
    directory = Path(directory)
    manifest_path = directory / MANIFEST_FILENAME
    if not manifest_path.exists():
        raise StorageError(f"no RA checkpoint manifest under {directory}")
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        if manifest["format"] not in SUPPORTED_CHECKPOINT_FORMATS:
            raise StorageError(
                f"checkpoint format {manifest['format']} unsupported; this "
                f"build reads formats {SUPPORTED_CHECKPOINT_FORMATS}"
            )
        agent_name = manifest["agent"]
        shard_widths = {ca: int(w) for ca, w in manifest["shard_widths"].items()}
        shard_members = {
            ca: {int(index): str(name) for index, name in members.items()}
            for ca, members in manifest["shard_members"].items()
        }
        entries = manifest["replicas"]
        # Optional (absent in pre-rotation checkpoints): rotating-keyring
        # state, opaque here — the chain is cryptographically re-validated
        # by RevocationAgent.learn_key_announcements on restore.
        keyrings = {
            str(ca): {
                "announcements": str(state["announcements"]),
                "clock": int(state["clock"]),
            }
            for ca, state in manifest.get("keyrings", {}).items()
        }
    except (ValueError, KeyError, TypeError) as exc:
        raise StorageError(f"malformed checkpoint manifest: {exc}") from None
    replicas = []
    for entry in entries:
        try:
            ca_name = entry["ca_name"]
            data = (directory / entry["file"]).read_bytes()
            expected_key = bytes.fromhex(entry["public_key"])
        except (OSError, KeyError, TypeError, ValueError) as exc:
            raise StorageError(f"unreadable checkpoint replica entry: {exc}") from None
        replica = _decode_replica(data, ca_name)
        if replica.public_key_bytes != expected_key:
            raise StorageError(
                f"replica checkpoint for {ca_name!r} carries a public key "
                f"that does not match the manifest"
            )
        replicas.append(replica)
    return AgentCheckpoint(
        agent_name=agent_name,
        shard_widths=shard_widths,
        shard_members=shard_members,
        replicas=replicas,
        keyrings=keyrings,
    )
