"""The Revocation Agent (RA): RITM's middlebox.

The RA sits on the client↔server path and implements §III of the paper:

1. it watches ClientHello messages for the RITM extension and creates
   per-connection state (Eq. 4);
2. when the matching ServerHello/Certificate flight passes by, it determines
   the issuing CA and serial number, builds a revocation status (Eq. 3) from
   its replica dictionary, and appends it to the packet towards the client;
3. once the connection is established it keeps piggybacking a fresh status on
   the first server→client packet after every Δ;
4. it stays completely transparent for non-TLS traffic and for clients that
   did not request RITM;
5. when another RA has already attached a status it only replaces it if its
   own dictionary view is more recent (§VIII, "Multiple RAs"), and it feeds
   every observed signed root to the consistency checker.

Dictionary replicas are updated out of band by the dissemination module
(:mod:`repro.ritm.dissemination`); the RA itself only reads them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.crypto.signing import CAKeyring, KeyPair, PublicKey
from repro.dictionary.authdict import ReplicaDictionary, RevocationIssuance
from repro.dictionary.freshness import FreshnessStatement
from repro.dictionary.proofs import RevocationStatus
from repro.dictionary.sharding import ShardKey, shard_name
from repro.errors import (
    DesynchronizedError,
    DictionaryError,
    ReproError,
    SignatureError,
    TLSError,
)
from repro.net.node import Middlebox
from repro.net.packet import Direction, Packet
from repro.perf import ProofCache, VerifiedRootCache
from repro.pki.certificate import CertificateChain
from repro.pki.serial import SerialNumber
from repro.ritm.config import RITMConfig
from repro.ritm.consistency import ConsistencyChecker
from repro.ritm.persistence import (
    AgentCheckpoint,
    ReplicaCheckpoint,
    load_checkpoint,
    write_checkpoint,
)
from repro.ritm.dpi import DPIEngine, InspectionResult
from repro.ritm.messages import (
    KeyAnnouncement,
    decode_key_announcements,
    decode_status_bundle,
    encode_key_announcements,
    encode_status_bundle,
)
from repro.ritm.state import ConnectionState, ConnectionTable
from repro.tls.connection import HandshakeStage
from repro.tls.records import ContentType, TLSRecord, parse_records, serialize_records


@dataclass
class AgentStatistics:
    """Operational counters for one RA."""

    packets_seen: int = 0
    packets_forwarded_transparently: int = 0
    supported_connections: int = 0
    statuses_attached: int = 0
    statuses_replaced: int = 0
    statuses_deferred_to_peer: int = 0
    unknown_ca: int = 0
    resumptions_recovered: int = 0
    shard_replicas_pruned: int = 0


class RevocationAgent(Middlebox):
    """An on-path middlebox that serves revocation statuses to RITM clients."""

    def __init__(
        self,
        name: str,
        config: Optional[RITMConfig] = None,
        per_packet_processing_seconds: float = 3e-6,
    ) -> None:
        super().__init__(name)
        self.config = config if config is not None else RITMConfig()
        self.replicas: Dict[str, ReplicaDictionary] = {}
        self.connections = ConnectionTable()
        self.dpi = DPIEngine()
        #: Deterministic per-RA reporter key: every MisbehaviorReport this
        #: agent emits is countersigned so the evidence is attributable.
        self.reporter_keys = KeyPair.generate(
            rng_seed=f"ra-reporter:{name}".encode("utf-8")
        )
        self.consistency = ConsistencyChecker(
            owner=name, reporter_keys=self.reporter_keys
        )
        self.stats = AgentStatistics()
        #: Server identity → (CA name, serial, expiry) cache used to recover
        #: the certificate identity on abbreviated (resumed) handshakes.
        self._server_cache: Dict[Tuple[str, int], Tuple[str, SerialNumber, int]] = {}
        self._per_packet_processing_seconds = per_packet_processing_seconds
        #: Expiry-shard width per sharded CA (set by the dissemination layer);
        #: lets the TLS path map (CA, certificate expiry) → shard replica.
        self.shard_widths: Dict[str, int] = {}
        #: Explicit shard membership: CA name → shard index → replica name.
        #: Kept as a registry (not derived by parsing replica names) so an
        #: unrelated CA whose name merely looks like a shard name can never
        #: be captured, prefix-skipped, or pruned.
        self._shard_members: Dict[str, Dict[int, str]] = {}
        #: Per-entry storage released by :meth:`prune_shard_replicas`.
        self.reclaimed_storage_bytes = 0
        #: Revocation entries dropped with pruned shard replicas.
        self.pruned_revocations = 0
        #: Hot-path verification engine (docs/PERFORMANCE.md): Merkle proofs
        #: for repeat lookups (session resumption, flash crowds) and a memo
        #: of Ed25519-verified roots shared by every replica of this RA.
        self.proof_cache = ProofCache(maxsize=self.config.proof_cache_size)
        self.root_cache = VerifiedRootCache(
            maxsize=self.config.root_cache_size,
            batch_width=self.config.signature_batch_width,
        )
        #: Validated key-announcement chains per CA (rotating keyrings
        #: only), kept so checkpoints can persist and rebuild the keyring.
        self._key_announcements: Dict[str, Tuple[KeyAnnouncement, ...]] = {}

    # -- dictionary management -------------------------------------------------

    def register_ca(self, ca_name: str, public_key) -> ReplicaDictionary:
        """Create (or return) the replica dictionary for one CA.

        ``public_key`` may be a bare :class:`PublicKey` (immortal-key
        baseline) or a :class:`~repro.crypto.signing.CAKeyring` anchored at
        the CA's genesis key — the latter lets the replica follow CA key
        rotations learned via :meth:`learn_key_announcements`.  The replica
        uses the store engine the RA was configured with
        (``config.store_engine``), so a whole deployment can be switched
        between engines from one knob.
        """
        if ca_name not in self.replicas:
            replica = ReplicaDictionary(
                ca_name,
                public_key,
                digest_size=self.config.digest_size,
                engine=self.config.store_engine,
            )
            replica.root_cache = self.root_cache
            self.replicas[ca_name] = replica
        return self.replicas[ca_name]

    def replica_for(self, ca_name: str) -> Optional[ReplicaDictionary]:
        """The replica registered under ``ca_name`` (None when unknown)."""
        return self.replicas.get(ca_name)

    def keyring_for(self, ca_name: str) -> Optional[CAKeyring]:
        """The replica's rotating keyring (None for bare-key or unknown CAs)."""
        replica = self.replicas.get(ca_name)
        if replica is None or not isinstance(replica.ca_public_key, CAKeyring):
            return None
        return replica.ca_public_key

    def learn_key_announcements(
        self, ca_name: str, announcements: Sequence[KeyAnnouncement]
    ) -> int:
        """Validate a CA's key-announcement chain and enroll any new keys.

        The chain is trusted only through the genesis anchor: announcement 0
        must carry the exact key bytes the replica's keyring was registered
        with, epochs must be contiguous from 0, activation times must be
        non-decreasing, and every later announcement must be signed by its
        *predecessor's* key.  Enrollment is strictly additive (idempotent on
        replays), so a forged chain can never displace already-trusted keys
        — at worst it is rejected wholesale with :class:`SignatureError`.
        Returns the number of keys newly enrolled.
        """
        replica = self.replicas.get(ca_name)
        if replica is None:
            raise DictionaryError(
                f"RA {self.name!r} has no replica for CA {ca_name!r}"
            )
        keyring = replica.ca_public_key
        if not isinstance(keyring, CAKeyring):
            raise DictionaryError(
                f"replica of {ca_name!r} is pinned to a single key; "
                f"it cannot learn rotations"
            )
        if not announcements:
            raise SignatureError(f"empty key-announcement chain for {ca_name!r}")
        genesis = announcements[0]
        if (
            genesis.ca_name != ca_name
            or genesis.key_epoch != 0
            or genesis.public_key_bytes != keyring.genesis.key_bytes
        ):
            raise SignatureError(
                f"key-announcement chain for {ca_name!r} is not anchored at "
                f"the trusted genesis key"
            )
        validated = [genesis]
        previous = PublicKey(genesis.public_key_bytes)
        for index, announcement in enumerate(announcements[1:], start=1):
            if announcement.ca_name != ca_name or announcement.key_epoch != index:
                raise SignatureError(
                    f"key-announcement chain for {ca_name!r} has "
                    f"non-contiguous or misattributed epochs"
                )
            if announcement.activated_at < validated[-1].activated_at:
                raise SignatureError(
                    f"key announcement {index} for {ca_name!r} activates a "
                    f"key before its predecessor"
                )
            if not previous.verify(announcement.payload(), announcement.signature):
                raise SignatureError(
                    f"key announcement {index} for {ca_name!r} is not signed "
                    f"by the epoch-{index - 1} key"
                )
            validated.append(announcement)
            previous = PublicKey(announcement.public_key_bytes)
        learned = 0
        for announcement in validated[len(keyring):]:
            keyring.add_key(
                PublicKey(announcement.public_key_bytes),
                activated_at=announcement.activated_at,
                overlap_seconds=announcement.overlap_seconds,
            )
            learned += 1
        self._key_announcements[ca_name] = tuple(validated)
        return learned

    # -- sharded CAs (§VIII "Ever-growing dictionaries") -----------------------

    def register_sharded_ca(self, ca_name: str, width_seconds: int) -> None:
        """Record that ``ca_name`` runs expiry-split dictionaries.

        The per-shard replicas themselves are registered lazily (via
        :meth:`register_ca` under each shard's name) as the dissemination
        layer discovers shards; this only records the width so the TLS path
        can map a certificate expiry to the right shard replica.
        """
        self.shard_widths[ca_name] = width_seconds

    def register_shard_replica(
        self, ca_name: str, shard_index: int, public_key: PublicKey
    ) -> ReplicaDictionary:
        """Create (or return) the replica of one expiry shard of ``ca_name``,
        recording its membership in the explicit shard registry.

        A name collision with a replica registered under a *different* CA
        key (an unrelated CA whose name happens to look like this shard) is
        rejected rather than captured — capturing it would stop its own
        pulls and eventually prune a live CA's replica.
        """
        name = shard_name(ca_name, shard_index)
        existing = self.replicas.get(name)
        if existing is not None and existing.ca_public_key.key_bytes != public_key.key_bytes:
            raise DictionaryError(
                f"replica name {name!r} is already registered for a different "
                f"CA key; refusing to adopt it as a shard of {ca_name!r}"
            )
        replica = self.register_ca(name, public_key)
        self._shard_members.setdefault(ca_name, {})[shard_index] = name
        return replica

    def shard_replica_names(self) -> set:
        """Replica names registered as shards (of any sharded CA)."""
        return {
            name
            for members in self._shard_members.values()
            for name in members.values()
        }

    def replica_for_certificate(
        self, ca_name: str, expiry: Optional[int] = None
    ) -> Optional[ReplicaDictionary]:
        """The replica proving for one certificate of ``ca_name``.

        For unsharded CAs this is the per-CA replica; for sharded CAs the
        certificate's ``expiry`` selects the shard replica.
        """
        replica = self.replicas.get(ca_name)
        if replica is not None:
            return replica
        width = self.shard_widths.get(ca_name)
        if width is None or expiry is None or expiry < 0:
            return None
        key = ShardKey.for_expiry(expiry, width)
        name = self._shard_members.get(ca_name, {}).get(key.index)
        return self.replicas.get(name) if name is not None else None

    def shard_replicas(self, ca_name: str) -> Dict[int, ReplicaDictionary]:
        """This RA's shard replicas of ``ca_name``, keyed by shard index."""
        members = self._shard_members.get(ca_name, {})
        return {
            index: self.replicas[name]
            for index, name in members.items()
            if name in self.replicas
        }

    def prune_shard_replicas(self, ca_name: str, now: float) -> Tuple[int, int]:
        """Drop shard replicas whose expiry window has passed.

        Returns ``(entries freed, bytes freed)`` and accumulates both in
        :attr:`pruned_revocations` / :attr:`reclaimed_storage_bytes` — the
        §VIII storage reclamation the sharded deployment mode is about.
        """
        width = self.shard_widths.get(ca_name)
        if width is None:
            return (0, 0)
        entries = bytes_freed = 0
        members = self._shard_members.get(ca_name, {})
        for index, replica in list(self.shard_replicas(ca_name).items()):
            if ShardKey(index, width).is_expired(now):
                entries += replica.size
                bytes_freed += replica.storage_size_bytes()
                name = members.pop(index)
                replica.close()  # release the pruned store (durable engines)
                del self.replicas[name]
                # Shard retirement: evict the retired dictionary's cached
                # proofs and root verdicts along with its replica.
                self.proof_cache.invalidate_dictionary(name)
                self.root_cache.invalidate_ca(name)
                self.stats.shard_replicas_pruned += 1
        self.pruned_revocations += entries
        self.reclaimed_storage_bytes += bytes_freed
        return (entries, bytes_freed)

    # -- crash recovery (docs/STORAGE.md) --------------------------------------

    def checkpoint(self, directory) -> int:
        """Persist this RA's warm-start state under ``directory``.

        Writes every replica that currently serves verified state (signed
        root + freshness + exact leaf dump), the shard widths, and the
        explicit shard registry through :mod:`repro.ritm.persistence`.
        Replicas that have not completed a first sync are skipped — there is
        nothing verified to persist, and a restored RA simply cold-syncs
        them.  Rotating keyrings are persisted as their validated
        key-announcement chain plus the keyring clock (the per-replica key
        in the manifest stays the *genesis* key, the trust anchor the chain
        must re-validate against on restore).  Returns the number of
        replicas persisted.
        """
        replicas = []
        keyrings: Dict[str, Dict[str, object]] = {}
        for ca_name in sorted(self.replicas):
            replica = self.replicas[ca_name]
            if replica.signed_root is None or replica.latest_freshness is None:
                continue
            verifier = replica.ca_public_key
            key_bytes = verifier.key_bytes
            if isinstance(verifier, CAKeyring):
                key_bytes = verifier.genesis.key_bytes
                chain = self._key_announcements.get(ca_name)
                if chain:
                    keyrings[ca_name] = {
                        "announcements": encode_key_announcements(chain).hex(),
                        "clock": verifier.clock,
                    }
            replicas.append(
                ReplicaCheckpoint(
                    ca_name=ca_name,
                    public_key_bytes=key_bytes,
                    signed_root=replica.signed_root,
                    freshness=replica.latest_freshness,
                    items=replica.leaf_items(),
                )
            )
        write_checkpoint(
            AgentCheckpoint(
                agent_name=self.name,
                shard_widths=dict(self.shard_widths),
                shard_members={
                    ca: dict(members) for ca, members in self._shard_members.items()
                },
                replicas=replicas,
                keyrings=keyrings,
            ),
            directory,
        )
        return len(replicas)

    def restore(self, directory) -> int:
        """Warm-start this RA from a checkpoint written by :meth:`checkpoint`.

        Every persisted replica is rebuilt and *re-verified* (root signature
        under the checkpointed CA key, recomputed Merkle root against the
        signed one) before it serves anything; a replica whose checkpoint
        fails verification is dropped and left to cold-sync on the next
        pull instead of aborting the whole restore.  Shard widths and the
        shard registry are restored so the TLS path maps certificate
        expiries to shard replicas immediately.  Returns the number of
        replicas warm-started.
        """
        checkpoint = load_checkpoint(directory)
        for ca_name, width in checkpoint.shard_widths.items():
            self.register_sharded_ca(ca_name, width)
        restored_names = set()
        failed_names = set()
        for entry in checkpoint.replicas:
            keyring_state = checkpoint.keyrings.get(entry.ca_name)
            if keyring_state is not None:
                # Rebuild the rotating keyring from the persisted chain,
                # re-validated against the genesis anchor.  A tampered or
                # undecodable chain leaves the keyring genesis-only, so the
                # root re-verification below rejects any state signed by a
                # rotated key and the replica degrades to cold sync — a
                # doctored checkpoint never smuggles in an untrusted key.
                replica = self.register_ca(
                    entry.ca_name, CAKeyring.single(entry.public_key)
                )
                try:
                    chain = decode_key_announcements(
                        bytes.fromhex(str(keyring_state["announcements"]))
                    )
                    self.learn_key_announcements(entry.ca_name, chain)
                    keyring = self.keyring_for(entry.ca_name)
                    if keyring is not None:
                        keyring.advance(int(keyring_state["clock"]))
                except (ReproError, ValueError, KeyError, TypeError):
                    pass
            else:
                replica = self.register_ca(entry.ca_name, entry.public_key)
            try:
                replica.restore_snapshot(entry.items, entry.signed_root, entry.freshness)
            except ReproError:
                # Corrupt or mismatched state: restore_snapshot rolled the
                # replica back to empty, so this CA simply cold-syncs on the
                # next pull instead of aborting the whole restore.
                failed_names.add(entry.ca_name)
                continue
            restored_names.add(entry.ca_name)
        shard_named = {
            name
            for members in checkpoint.shard_members.values()
            for name in members.values()
        }
        # A shard replica that failed verification must not linger: keeping
        # it registered (empty) would map TLS-path lookups for its expiry
        # window onto an unverified replica and make the main pull loop
        # treat it as a base CA.  Drop it entirely — the next shard-index
        # pull rediscovers and cold-syncs it.
        for name in failed_names & shard_named:
            replica = self.replicas.pop(name, None)
            if replica is not None:
                replica.close()
        for ca_name, members in checkpoint.shard_members.items():
            kept = {
                index: name
                for index, name in members.items()
                if name in restored_names
            }
            if kept:
                self._shard_members.setdefault(ca_name, {}).update(kept)
        return len(restored_names)

    def close(self) -> None:
        """Close every replica's backing store (durable engines release I/O)."""
        for replica in self.replicas.values():
            replica.close()

    def apply_issuance(self, issuance: RevocationIssuance) -> None:
        self.apply_issuances(issuance.ca_name, [issuance])

    def apply_issuances(
        self, ca_name: str, issuances: Sequence[RevocationIssuance]
    ) -> int:
        """Apply consecutive issuance batches in one store transaction.

        This is the entry point the dissemination pull cycle uses: all the
        batches queued since the last pull are verified and merged at once
        (``ReplicaDictionary.update_many``), and every observed signed root
        is fed to the consistency checker.  Returns serials applied.
        """
        replica = self.replicas.get(ca_name)
        if replica is None:
            raise DictionaryError(
                f"RA {self.name!r} has no replica for CA {ca_name!r}"
            )
        applied = replica.update_many(list(issuances))
        if applied:
            # The replica now serves a new root; proofs cached under the old
            # one are unreachable (the root is part of the cache key), so
            # reclaim their space eagerly.
            self.proof_cache.invalidate_dictionary(ca_name)
        for issuance in issuances:
            self.consistency.observe_root(issuance.signed_root)
        return applied

    def apply_freshness(self, statement: FreshnessStatement) -> None:
        replica = self.replicas.get(statement.ca_name)
        if replica is None:
            raise DictionaryError(
                f"RA {self.name!r} has no replica for CA {statement.ca_name!r}"
            )
        replica.apply_freshness(statement)

    # -- middlebox interface ------------------------------------------------------

    def processing_delay(self, packet: Packet) -> float:
        return self._per_packet_processing_seconds

    def process_packet(self, packet: Packet, now: float) -> List[Packet]:
        self.stats.packets_seen += 1
        if not self.dpi.is_tls(packet.payload):
            self.stats.packets_forwarded_transparently += 1
            return [packet]

        inspection = self.dpi.inspect(packet.payload)
        if inspection.parse_error is not None:
            # Malformed TLS: forward untouched, never break the connection.
            self.stats.packets_forwarded_transparently += 1
            return [packet]

        if packet.direction is Direction.CLIENT_TO_SERVER:
            return [self._handle_client_to_server(packet, inspection, now)]
        return [self._handle_server_to_client(packet, inspection, now)]

    # -- client → server ------------------------------------------------------------

    def _handle_client_to_server(
        self, packet: Packet, inspection: InspectionResult, now: float
    ) -> Packet:
        if inspection.client_hello is not None and inspection.client_requests_ritm:
            state = self.connections.lookup(packet.flow)
            if state is None:
                state = self.connections.create(packet.flow, now)
                self.stats.supported_connections += 1
            state.stage = HandshakeStage.CLIENT_HELLO
            state.session_id = inspection.client_hello.session_id
            state.last_activity = now
        else:
            self.connections.touch(packet.flow, now)
        return packet

    # -- server → client ------------------------------------------------------------

    def _handle_server_to_client(
        self, packet: Packet, inspection: InspectionResult, now: float
    ) -> Packet:
        state = self.connections.lookup(packet.flow)
        if state is None:
            # Not a supported connection: transparent forwarding.
            self.stats.packets_forwarded_transparently += 1
            return packet
        state.last_activity = now

        if inspection.server_hello is not None:
            state.stage = HandshakeStage.SERVER_HELLO
            if inspection.server_hello.session_id:
                state.session_id = inspection.server_hello.session_id

        if inspection.certificate_chain is not None:
            self._learn_certificate(packet, state, inspection.certificate_chain)
        elif inspection.server_hello is not None and not state.knows_certificate():
            # Abbreviated handshake: recover the identity from the server cache.
            cached = self._server_cache.get((packet.flow.src_ip, packet.flow.src_port))
            if cached is not None:
                state.ca_name, state.serial, state.certificate_expiry = cached
                self.stats.resumptions_recovered += 1

        packet = self._maybe_attach_status(packet, state, inspection, now)

        if inspection.finished_seen:
            state.stage = HandshakeStage.ESTABLISHED
        return packet

    def _learn_certificate(
        self, packet: Packet, state: ConnectionState, chain: CertificateChain
    ) -> None:
        leaf = chain.leaf
        state.ca_name = leaf.issuer
        state.serial = leaf.serial
        state.certificate_expiry = leaf.not_after
        self._server_cache[(packet.flow.src_ip, packet.flow.src_port)] = (
            leaf.issuer,
            leaf.serial,
            leaf.not_after,
        )
        if state.session_id:
            self.connections.remember_session(state.session_id, leaf.issuer, leaf.serial)
        state.chain = chain  # kept for full-chain proving (§VIII)

    # -- status attachment -------------------------------------------------------------

    def _maybe_attach_status(
        self,
        packet: Packet,
        state: ConnectionState,
        inspection: InspectionResult,
        now: float,
    ) -> Packet:
        handshake_moment = (
            inspection.server_hello is not None or inspection.certificate_chain is not None
        )
        refresh_moment = (
            state.is_established()
            and (inspection.has_application_data or inspection.finished_seen)
            and state.needs_status(now, self.config.status_refresh_seconds)
        )
        if not handshake_moment and not refresh_moment:
            return packet
        if not state.knows_certificate():
            return packet

        statuses = self._build_statuses(state, now)
        if statuses is None:
            return packet

        if inspection.has_ritm_status:
            return self._reconcile_with_existing_status(packet, state, statuses, now)

        new_payload = packet.payload + self._status_record(statuses).to_bytes()
        state.mark_status_sent(now)
        self.stats.statuses_attached += 1
        return packet.with_payload(new_payload)

    def build_status(
        self, ca_name: str, serial: SerialNumber, expiry: Optional[int] = None
    ) -> RevocationStatus:
        """Build one certificate's revocation status through the proof cache.

        Identical in content to ``replica.prove(serial)`` — differentially
        tested — but the Merkle audit path is served from
        :attr:`proof_cache` when the same ``(dictionary, root, serial)``
        lookup was answered before (session resumption, flash crowds), while
        the signed root and the freshness statement are always read live so
        a cached proof can never carry a stale epoch.

        Raises :class:`DictionaryError` when no replica covers the
        certificate and :class:`DesynchronizedError` when the replica has no
        verified root yet (mirroring ``prove``).
        """
        replica = self.replica_for_certificate(ca_name, expiry)
        if replica is None:
            raise DictionaryError(
                f"RA {self.name!r} has no replica covering CA {ca_name!r}"
            )
        return self._status_from(ca_name, replica, serial)

    def _status_from(
        self, ca_name: str, replica: ReplicaDictionary, serial: SerialNumber
    ) -> RevocationStatus:
        """Proof-cached status assembly from an already-resolved replica."""
        signed_root = replica.signed_root
        freshness = replica.latest_freshness
        if signed_root is None or freshness is None:
            raise DesynchronizedError(
                f"replica of {replica.ca_name!r} has no signed root / freshness statement yet"
            )
        shard = replica.ca_name if replica.ca_name != ca_name else ""
        proof = self.proof_cache.get(ca_name, shard, signed_root.root, serial.value)
        if proof is None:
            proof = replica.prove_membership(serial)
            self.proof_cache.put(ca_name, shard, signed_root.root, serial.value, proof)
        return RevocationStatus(
            ca_name=replica.ca_name,
            serial=serial,
            proof=proof,
            signed_root=signed_root,
            freshness=freshness,
        )

    def _build_statuses(
        self, state: ConnectionState, now: float
    ) -> Optional[List[RevocationStatus]]:
        replica = self.replica_for_certificate(
            state.ca_name or "", state.certificate_expiry
        )
        if replica is None or replica.signed_root is None:
            self.stats.unknown_ca += 1
            return None
        try:
            statuses = [self._status_from(state.ca_name or "", replica, state.serial)]
        except DesynchronizedError:
            return None
        if self.config.prove_full_chain:
            chain: Optional[CertificateChain] = getattr(state, "chain", None)
            if chain is not None:
                for certificate in list(chain)[1:]:
                    issuer_replica = self.replica_for_certificate(
                        certificate.issuer, certificate.not_after
                    )
                    if issuer_replica is not None and issuer_replica.signed_root is not None:
                        statuses.append(
                            self._status_from(
                                certificate.issuer, issuer_replica, certificate.serial
                            )
                        )
        return statuses

    def _status_record(self, statuses: List[RevocationStatus]) -> TLSRecord:
        return TLSRecord(ContentType.RITM_STATUS, encode_status_bundle(statuses))

    def _reconcile_with_existing_status(
        self,
        packet: Packet,
        state: ConnectionState,
        our_statuses: List[RevocationStatus],
        now: float,
    ) -> Packet:
        """Multiple-RA handling (§VIII): keep the most recent status only."""
        try:
            records = parse_records(packet.payload)
        except TLSError:
            return packet
        existing: List[RevocationStatus] = []
        passthrough: List[TLSRecord] = []
        for record in records:
            if record.is_ritm_status():
                try:
                    existing.extend(decode_status_bundle(record.payload))
                except TLSError:
                    continue
            else:
                passthrough.append(record)

        for status in existing:
            self.consistency.observe_root(status.signed_root)

        ours = our_statuses[0].signed_root
        theirs = existing[0].signed_root if existing else None
        our_view_is_newer = theirs is None or (
            ours.size,
            ours.timestamp,
        ) > (theirs.size, theirs.timestamp)

        if not our_view_is_newer:
            self.stats.statuses_deferred_to_peer += 1
            state.mark_status_sent(now)
            return packet

        passthrough.append(self._status_record(our_statuses))
        state.mark_status_sent(now)
        self.stats.statuses_replaced += 1
        return packet.with_payload(serialize_records(passthrough))

    # -- housekeeping ---------------------------------------------------------------------

    def expire_idle_connections(self, now: float) -> int:
        return self.connections.expire_idle(now)

    def dictionary_sizes(self) -> Dict[str, int]:
        return {name: replica.size for name, replica in self.replicas.items()}

    def hot_path_metrics(self) -> Dict[str, Dict[str, object]]:
        """Counters of the RA's read-path caches (docs/PERFORMANCE.md)."""
        return {
            "proof_cache": self.proof_cache.stats.as_dict(),
            "root_cache": self.root_cache.stats.as_dict(),
        }
