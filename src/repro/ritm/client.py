"""The RITM-supported TLS client.

The client (paper §III steps 1, 5, 7) behaves like an ordinary TLS client
with three additions:

* its ClientHello carries the RITM extension;
* before accepting the server's certificate it requires a revocation status
  (absence proof + signed root + freshness statement) attached by an on-path
  RA, verifies it, and rejects the connection if the status is missing,
  stale, invalid, or shows the certificate revoked;
* on an established connection it expects a fresh status at least every 2Δ
  and tears the connection down otherwise (the race-condition protection and
  blocking-attack defence of §V).

It is implemented as a network :class:`~repro.net.node.Endpoint`, so it plugs
directly into the path engine next to RAs and servers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

from repro.crypto.signing import PublicKey
from repro.dictionary.proofs import RevocationStatus
from repro.errors import (
    CertificateError,
    PolicyError,
    ProofError,
    RevokedCertificateError,
    SignatureError,
    StaleStatusError,
    TLSError,
)
from repro.net.node import Endpoint
from repro.net.packet import Packet
from repro.perf import VerifiedRootCache
from repro.pki.ca import TrustStore
from repro.ritm.config import RITMConfig
from repro.ritm.consistency import ConsistencyChecker
from repro.ritm.messages import decode_status_bundle
from repro.tls.connection import (
    ClientConnectionConfig,
    HandshakeStage,
    TLSClientConnection,
)
from repro.tls.records import ContentType, TLSRecord, parse_records, serialize_records


class RejectionReason(Enum):
    """Why an RITM client refused (or tore down) a connection."""

    STANDARD_VALIDATION_FAILED = "standard-validation-failed"
    MISSING_STATUS = "missing-status"
    INVALID_STATUS = "invalid-status"
    STALE_STATUS = "stale-status"
    CERTIFICATE_REVOKED = "certificate-revoked"
    STATUS_TIMEOUT = "status-timeout"
    DOWNGRADE_SUSPECTED = "downgrade-suspected"


@dataclass
class ClientStatistics:
    statuses_received: int = 0
    statuses_valid: int = 0
    statuses_invalid: int = 0
    connections_rejected: int = 0
    connections_interrupted: int = 0


class RITMClient(Endpoint):
    """A TLS client that enforces RITM's certificate-acceptance policy."""

    def __init__(
        self,
        ip_address: str,
        server_name: str,
        trust_store: TrustStore,
        ca_public_keys: Dict[str, PublicKey],
        config: Optional[RITMConfig] = None,
        expect_ritm_protection: bool = True,
        session_id: bytes = b"",
        session_ticket: bytes = b"",
        root_cache: Optional[VerifiedRootCache] = None,
        validation_cache=None,
    ) -> None:
        self.config = config if config is not None else RITMConfig()
        super().__init__(ip_address)
        self.ca_public_keys = ca_public_keys
        self.expect_ritm_protection = expect_ritm_protection
        #: Hot-path engine (docs/PERFORMANCE.md): each CA's signed root is
        #: Ed25519-verified once per Δ epoch instead of once per handshake.
        #: Pass a shared cache to model a client fleet (or a browser across
        #: reconnects); by default each client keeps its own.
        self.root_cache = (
            root_cache
            if root_cache is not None
            else VerifiedRootCache(
                maxsize=self.config.root_cache_size,
                batch_width=self.config.signature_batch_width,
            )
        )
        self.tls = TLSClientConnection(
            ClientConnectionConfig(
                server_name=server_name,
                use_ritm_extension=True,
                session_id=session_id,
                session_ticket=session_ticket,
                validation_cache=validation_cache,
            ),
            trust_store,
        )
        self.consistency = ConsistencyChecker(owner=f"client:{ip_address}")
        self.stats = ClientStatistics()
        self.last_status_at: Optional[float] = None
        self.last_status: Optional[RevocationStatus] = None
        self.rejection: Optional[RejectionReason] = None
        self.rejection_detail: str = ""
        self.connection_accepted = False

    # -- outbound ------------------------------------------------------------

    def client_hello_packet(self, flow, now: float) -> Packet:
        """The opening packet of the connection."""
        record = self.tls.client_hello()
        return Packet(flow=flow, payload=record.to_bytes(), created_at=now)

    def application_packet(self, flow, payload: bytes, now: float) -> Packet:
        record = self.tls.application_data(payload)
        return Packet(flow=flow, payload=record.to_bytes(), created_at=now)

    # -- endpoint interface -----------------------------------------------------

    def handle_packet(self, packet: Packet, now: float) -> List[Packet]:
        """Split RITM status records from TLS records, validate, then hand the
        TLS records to the inner connection state machine."""
        try:
            records = parse_records(packet.payload)
        except TLSError as exc:
            self._reject(RejectionReason.INVALID_STATUS, f"unparseable packet: {exc}")
            return []

        tls_records: List[TLSRecord] = []
        status_seen = False
        statuses_in_packet: List[RevocationStatus] = []
        for record in records:
            if record.is_ritm_status():
                status_seen = True
                consumed = self._consume_status_record(record, now)
                if consumed is None:
                    return []
                statuses_in_packet.extend(consumed)
            else:
                tls_records.append(record)

        server_hello_present = any(
            record.is_handshake() and record.payload[:1] == b"\x02" for record in tls_records
        )

        responses: List[TLSRecord] = []
        for record in tls_records:
            try:
                responses.extend(self.tls.process_record(record, int(now)))
            except CertificateError as exc:
                self._reject(RejectionReason.STANDARD_VALIDATION_FAILED, str(exc))
                return []
            except TLSError as exc:
                self._reject(RejectionReason.INVALID_STATUS, f"TLS failure: {exc}")
                return []

        # Policy: a status delivered alongside the certificate must actually
        # cover that certificate — a valid proof about a *different* serial
        # (e.g. replayed by a compromised RA) does not count.
        if statuses_in_packet and self.tls.server_chain is not None:
            leaf = self.tls.server_chain.leaf
            if not any(
                status.serial == leaf.serial and status.ca_name == leaf.issuer
                for status in statuses_in_packet
            ):
                self._reject(
                    RejectionReason.INVALID_STATUS,
                    "revocation status does not cover the server's certificate",
                )
                return []

        # Policy: a handshake flight that carries the server's hello must come
        # with a revocation status when the client expects RITM protection.
        if (
            self.expect_ritm_protection
            and server_hello_present
            and not status_seen
            and not self.tls.server_confirmed_ritm
        ):
            self._reject(
                RejectionReason.MISSING_STATUS,
                "ServerHello arrived without a revocation status and without a "
                "terminator confirmation; possible downgrade or missing RA",
            )
            return []

        if self.tls.is_established and self.rejection is None:
            self.connection_accepted = True

        reply_packets: List[Packet] = []
        if responses:
            reply_packets.append(
                packet.reply(serialize_records(responses), created_at=now)
            )
        return reply_packets

    # -- periodic policy check ----------------------------------------------------

    def enforce_freshness(self, now: float) -> bool:
        """Tear the connection down if no fresh status arrived within 2Δ (§III step 7).

        Returns ``True`` when the connection remains acceptable.
        """
        if not self.connection_accepted:
            return self.rejection is None
        window = self.config.attack_window_seconds
        if self.last_status_at is None or now - self.last_status_at > window:
            self._interrupt(
                RejectionReason.STATUS_TIMEOUT,
                f"no fresh revocation status for {window} seconds",
            )
            return False
        return True

    @property
    def is_connection_usable(self) -> bool:
        return self.connection_accepted and self.rejection is None

    # -- internals -------------------------------------------------------------------

    def _consume_status_record(
        self, record: TLSRecord, now: float
    ) -> Optional[List[RevocationStatus]]:
        """Validate one status record; returns its statuses, or None on failure."""
        try:
            statuses = decode_status_bundle(record.payload)
        except TLSError as exc:
            self.stats.statuses_invalid += 1
            self._reject(RejectionReason.INVALID_STATUS, f"malformed status record: {exc}")
            return None
        for status in statuses:
            self.stats.statuses_received += 1
            if not self._validate_status(status, now):
                return None
        return statuses

    def _validate_status(self, status: RevocationStatus, now: float) -> bool:
        ca_key = self.ca_public_keys.get(status.ca_name)
        if ca_key is None:
            self.stats.statuses_invalid += 1
            self._reject(
                RejectionReason.INVALID_STATUS,
                f"status signed by unknown CA {status.ca_name!r}",
            )
            return False
        try:
            status.verify(
                ca_key,
                now=int(now),
                delta=self.config.delta_seconds,
                tolerance_periods=self.config.freshness_tolerance_periods,
                root_cache=self.root_cache,
            )
        except RevokedCertificateError as exc:
            self.stats.statuses_valid += 1
            self._reject(RejectionReason.CERTIFICATE_REVOKED, str(exc))
            return False
        except StaleStatusError as exc:
            self.stats.statuses_invalid += 1
            self._reject(RejectionReason.STALE_STATUS, str(exc))
            return False
        except (SignatureError, ProofError) as exc:
            self.stats.statuses_invalid += 1
            self._reject(RejectionReason.INVALID_STATUS, str(exc))
            return False
        self.stats.statuses_valid += 1
        self.last_status_at = now
        self.last_status = status
        self.consistency.observe_root(status.signed_root)
        return True

    def _reject(self, reason: RejectionReason, detail: str) -> None:
        if self.rejection is None:
            self.rejection = reason
            self.rejection_detail = detail
        self.stats.connections_rejected += 1
        self.connection_accepted = False
        self.tls.stage = HandshakeStage.CLOSED

    def _interrupt(self, reason: RejectionReason, detail: str) -> None:
        self.rejection = reason
        self.rejection_detail = detail
        self.stats.connections_interrupted += 1
        self.connection_accepted = False
        self.tls.stage = HandshakeStage.CLOSED


class LegacyTLSClient(Endpoint):
    """A non-RITM client: sends no extension and ignores RITM status records.

    Used to show backward compatibility — RAs must stay fully transparent for
    such clients (§VII-F).
    """

    def __init__(self, ip_address: str, server_name: str, trust_store: TrustStore) -> None:
        super().__init__(ip_address)
        self.tls = TLSClientConnection(
            ClientConnectionConfig(server_name=server_name, use_ritm_extension=False),
            trust_store,
        )

    def client_hello_packet(self, flow, now: float) -> Packet:
        record = self.tls.client_hello()
        return Packet(flow=flow, payload=record.to_bytes(), created_at=now)

    def handle_packet(self, packet: Packet, now: float) -> List[Packet]:
        records = parse_records(packet.payload)
        responses: List[TLSRecord] = []
        for record in records:
            if record.is_ritm_status():
                continue  # a legacy client simply does not understand these
            responses.extend(self.tls.process_record(record, int(now)))
        if responses:
            return [packet.reply(serialize_records(responses), created_at=now)]
        return []
