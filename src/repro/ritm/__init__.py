"""RITM core: Revocation Agents, clients, CAs, dissemination, deployments."""

from repro.ritm.agent import AgentStatistics, RevocationAgent
from repro.ritm.ca_service import (
    RITMCertificationAuthority,
    head_path,
    issuance_path,
    manifest_path,
    shard_index_path,
)
from repro.ritm.client import LegacyTLSClient, RejectionReason, RITMClient
from repro.ritm.config import (
    PAPER_DELTA_SWEEP,
    DeploymentModel,
    RITMConfig,
    SECONDS_PER_DAY,
    SECONDS_PER_HOUR,
    SECONDS_PER_MINUTE,
)
from repro.ritm.consistency import (
    ConsistencyChecker,
    GossipExchange,
    MisbehaviorReport,
    cross_check_edge,
)
from repro.ritm.deployment import (
    Deployment,
    build_close_to_client_deployment,
    build_close_to_server_deployment,
    build_unprotected_path,
)
from repro.ritm.dissemination import RADisseminationClient, PullResult, attach_agent_to_cas
from repro.ritm.dpi import DPIEngine, InspectionResult
from repro.ritm.messages import (
    DictionaryHead,
    ShardIndex,
    decode_head,
    decode_issuance,
    decode_shard_index,
    decode_status,
    decode_status_bundle,
    encode_head,
    encode_issuance,
    encode_shard_index,
    encode_status,
    encode_status_bundle,
)
from repro.ritm.server import RITMServer, TLSTerminator
from repro.ritm.state import ConnectionState, ConnectionTable

__all__ = [
    "RevocationAgent",
    "AgentStatistics",
    "RITMClient",
    "LegacyTLSClient",
    "RejectionReason",
    "RITMServer",
    "TLSTerminator",
    "RITMCertificationAuthority",
    "head_path",
    "issuance_path",
    "manifest_path",
    "shard_index_path",
    "RITMConfig",
    "DeploymentModel",
    "PAPER_DELTA_SWEEP",
    "SECONDS_PER_MINUTE",
    "SECONDS_PER_HOUR",
    "SECONDS_PER_DAY",
    "ConsistencyChecker",
    "GossipExchange",
    "MisbehaviorReport",
    "cross_check_edge",
    "Deployment",
    "build_close_to_client_deployment",
    "build_close_to_server_deployment",
    "build_unprotected_path",
    "RADisseminationClient",
    "PullResult",
    "attach_agent_to_cas",
    "DPIEngine",
    "InspectionResult",
    "ConnectionState",
    "ConnectionTable",
    "DictionaryHead",
    "ShardIndex",
    "encode_shard_index",
    "decode_shard_index",
    "encode_status",
    "decode_status",
    "encode_status_bundle",
    "decode_status_bundle",
    "encode_head",
    "decode_head",
    "encode_issuance",
    "decode_issuance",
]
