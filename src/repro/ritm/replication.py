"""Streaming WAL replication: CA→RA segment shipping and RA→RA anti-entropy.

The Δ-periodic pull path (``repro.ritm.dissemination``) makes every lagging
RA fetch its missing issuance batches — or a full cold sync — from the CA's
distribution point.  That keeps the CA the single egress bottleneck: a
region-wide RA outage ends in N simultaneous cold syncs against one origin.
This module turns PR 5's durable WAL into the fleet-wide dissemination
transport instead:

* the CA appends every revocation batch to a :class:`ReplicationLog` as a
  sequence-numbered **WAL segment** — the durable engine's CRC'd record
  frames wrapped in a CA-signed header carrying ``(ca, shard,
  segment_number, first_seq, last_seq, root_after, freshness_after)``;
* any RA that verified a segment keeps its raw bytes, so a lagging or
  freshly-restored agent can catch up **peer-to-peer** from a regional
  neighbour (chosen via :mod:`repro.cdn.geography`) instead of hitting the
  CA — peers relay segments unmodified, and every hop re-verifies the CA
  signature, the per-record CRCs, and the post-apply root, so a relaying
  peer can delay or drop segments but never alter or forge one.

Segments are self-authenticating: applying one goes through the same
``ReplicaDictionary.update_many`` transaction as the ordinary pull path
(signature check up front, recomputed root against ``root_after``, rollback
on mismatch), so a tampered segment can never mutate a replica, and a
sequence gap degrades *explicitly* to the sync protocol rather than being
papered over.  The wire format, failure matrix, and tuning knobs are
documented in ``docs/REPLICATION.md``.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cdn.geography import GeoLocation, region_distance
from repro.crypto.signing import KeyPair
from repro.dictionary.authdict import RevocationIssuance
from repro.dictionary.freshness import FreshnessStatement
from repro.dictionary.signed_root import SignedRoot
from repro.errors import DesynchronizedError, TLSError
from repro.pki.serial import SerialNumber
from repro.ritm.messages import (
    _pack_bytes,
    _unpack_bytes,
    decode_freshness,
    decode_signed_root,
    encode_freshness,
    encode_signed_root,
)

# The segment body reuses the durable engine's record framing verbatim
# (seq u64 | type u8 | payload length u32 | payload | CRC32) — the whole
# point of shipping the WAL is that the records are already CRC'd and
# idempotent, so the replication plane adds only the signed header.
from repro.store.durable import (  # noqa: F401 - re-exported record framing
    _RECORD_CRC as RECORD_CRC,
    _RECORD_HEADER as RECORD_HEADER,
    _RECORD_INSERT as RECORD_INSERT,
    decode_leaf_pairs,
    encode_leaf_pairs,
)

#: Magic prefix of every encoded WAL segment (format 1).
SEGMENT_MAGIC = b"RITMSEG1"

#: Leaf-value width: the revocation number as 4 big-endian bytes, matching
#: the dictionary's leaf encoding so segment records ARE dictionary leaves.
VALUE_WIDTH = 4


def segment_path(ca_name: str, segment_number: int) -> str:
    """CDN path of one published WAL segment (CA-direct replication)."""
    return f"/ritm/{ca_name}/segment/{segment_number}"


@dataclass(frozen=True)
class WALSegment:
    """One sequence-numbered, CA-signed slice of the revocation WAL.

    ``items`` are dictionary leaves ``(serial bytes, revocation number as 4
    big-endian bytes)`` in revocation order covering exactly the numbers
    ``first_seq..last_seq``; ``root_after``/``freshness_after`` are the
    signed root and freshness statement the dictionary served immediately
    after this batch, so a replica that applies the segment reaches the
    byte-identical state a head-pulling replica would.
    """

    ca_name: str
    #: Shard name for sharded deployments; empty for a whole-CA stream.
    shard: str
    #: Position in the CA's segment stream (1-based, gap-free).
    segment_number: int
    first_seq: int
    last_seq: int
    root_after: SignedRoot
    freshness_after: FreshnessStatement
    items: Tuple[Tuple[bytes, bytes], ...]
    #: CA signature over :func:`segment_header_payload`.
    signature: bytes = b""

    def serials(self) -> List[SerialNumber]:
        """The revoked serials this segment carries, in revocation order."""
        return [SerialNumber.from_bytes(key) for key, _ in self.items]


def segment_header_payload(segment: WALSegment) -> bytes:
    """The exact bytes the CA signs: identity, cursor range, and end state.

    The signature covers the *claimed range and outcome*, not the record
    bytes — record integrity is enforced by the per-record CRCs plus the
    ``update_many`` recomputed-root check against ``root_after``, which the
    signature does cover.  A relay can therefore neither alter records
    (root check fails) nor re-scope an honest segment (header check fails).
    """
    return b"".join(
        [
            _pack_bytes(segment.ca_name.encode("utf-8")),
            _pack_bytes(segment.shard.encode("utf-8")),
            struct.pack(
                ">QQQ", segment.segment_number, segment.first_seq, segment.last_seq
            ),
            encode_signed_root(segment.root_after),
            encode_freshness(segment.freshness_after),
        ]
    )


def _encode_records(items: Sequence[Tuple[bytes, bytes]], first_seq: int) -> bytes:
    """Frame leaves as durable-WAL insert records, one leaf per record."""
    body = bytearray()
    for offset, item in enumerate(items):
        payload = encode_leaf_pairs([item])
        header = RECORD_HEADER.pack(first_seq + offset, RECORD_INSERT, len(payload))
        body += header
        body += payload
        body += RECORD_CRC.pack(zlib.crc32(header + payload))
    return bytes(body)


def _decode_records(
    data: bytes, first_seq: int, last_seq: int
) -> Tuple[Tuple[bytes, bytes], ...]:
    """Parse and CRC-check the record frames of one segment body."""
    items: List[Tuple[bytes, bytes]] = []
    offset = 0
    expected_seq = first_seq
    while offset < len(data):
        if offset + RECORD_HEADER.size > len(data):
            raise TLSError("truncated WAL segment record header")
        seq, record_type, payload_length = RECORD_HEADER.unpack_from(data, offset)
        end = offset + RECORD_HEADER.size + payload_length + RECORD_CRC.size
        if end > len(data):
            raise TLSError("truncated WAL segment record body")
        (stored_crc,) = RECORD_CRC.unpack_from(data, end - RECORD_CRC.size)
        if zlib.crc32(data[offset : end - RECORD_CRC.size]) != stored_crc:
            raise TLSError(f"WAL segment record {seq} failed its CRC")
        if record_type != RECORD_INSERT:
            raise TLSError(f"WAL segment record {seq} has unsupported type {record_type}")
        if seq != expected_seq:
            raise TLSError(
                f"WAL segment records out of order: expected seq {expected_seq}, got {seq}"
            )
        payload = data[offset + RECORD_HEADER.size : end - RECORD_CRC.size]
        decoded, consumed = decode_leaf_pairs(payload, 0, 1)
        if consumed != len(payload):
            raise TLSError(f"WAL segment record {seq} has trailing payload bytes")
        key, value = decoded[0]
        if len(value) != VALUE_WIDTH or int.from_bytes(value, "big") != seq:
            raise TLSError(
                f"WAL segment record {seq} carries a leaf value that does not "
                f"encode its own sequence number"
            )
        items.append((key, value))
        expected_seq += 1
        offset = end
    if expected_seq != last_seq + 1:
        raise TLSError(
            f"WAL segment covers {first_seq}..{last_seq} but carries "
            f"{len(items)} records"
        )
    return tuple(items)


def encode_segment(segment: WALSegment) -> bytes:
    """Serialize one segment: magic, signed header, records, trailing CRC32."""
    header = segment_header_payload(segment)
    records = _encode_records(segment.items, segment.first_seq)
    body = bytearray()
    body += SEGMENT_MAGIC
    body += struct.pack(">I", len(header))
    body += header
    body += _pack_bytes(segment.signature)
    body += struct.pack(">I", len(records))
    body += records
    body += struct.pack(">I", zlib.crc32(bytes(body)))
    return bytes(body)


def decode_segment(data: bytes) -> WALSegment:
    """Parse one encoded segment, checking framing and every CRC.

    Structural and integrity failures raise :class:`~repro.errors.TLSError`;
    the CA signature is *not* checked here — callers verify it against their
    own trust anchor via :func:`verify_segment` before applying anything.
    """
    floor = len(SEGMENT_MAGIC) + 4 + 2 + 4 + 4
    if len(data) < floor or not data.startswith(SEGMENT_MAGIC):
        raise TLSError("not a RITM WAL segment")
    (stored_crc,) = struct.unpack_from(">I", data, len(data) - 4)
    if zlib.crc32(data[:-4]) != stored_crc:
        raise TLSError("WAL segment failed its checksum")
    offset = len(SEGMENT_MAGIC)
    (header_length,) = struct.unpack_from(">I", data, offset)
    offset += 4
    if offset + header_length > len(data) - 4:
        raise TLSError("truncated WAL segment header")
    header = data[offset : offset + header_length]
    offset += header_length
    signature, offset = _unpack_bytes(data, offset)
    if offset + 4 > len(data) - 4:
        raise TLSError("truncated WAL segment body length")
    (body_length,) = struct.unpack_from(">I", data, offset)
    offset += 4
    if offset + body_length != len(data) - 4:
        raise TLSError("WAL segment body length does not match the frame")
    records = data[offset : offset + body_length]

    # -- header fields ------------------------------------------------------
    hoff = 0
    ca_name, hoff = _unpack_bytes(header, hoff)
    shard, hoff = _unpack_bytes(header, hoff)
    if hoff + 24 > len(header):
        raise TLSError("truncated WAL segment cursor range")
    segment_number, first_seq, last_seq = struct.unpack_from(">QQQ", header, hoff)
    hoff += 24
    root_after, hoff = decode_signed_root(header, hoff)
    freshness_after, hoff = decode_freshness(header, hoff)
    if hoff != len(header):
        raise TLSError("WAL segment header has trailing bytes")
    if segment_number < 1 or first_seq < 1 or last_seq < first_seq:
        raise TLSError("WAL segment header carries an implausible cursor range")
    items = _decode_records(records, first_seq, last_seq)
    return WALSegment(
        ca_name=ca_name.decode("utf-8"),
        shard=shard.decode("utf-8"),
        segment_number=segment_number,
        first_seq=first_seq,
        last_seq=last_seq,
        root_after=root_after,
        freshness_after=freshness_after,
        items=items,
        signature=signature,
    )


def verify_segment(segment: WALSegment, verifier) -> bool:
    """Check the segment header's CA signature against a trust anchor.

    ``verifier`` is a bare :class:`~repro.crypto.signing.PublicKey` or a
    time-scoped :class:`~repro.crypto.signing.CAKeyring` — both expose
    ``verify``.  Relayed segments are verified against the *receiver's own*
    anchor, never the relay's claims, so a peer cannot launder a forgery.
    """
    return bool(verifier.verify(segment_header_payload(segment), segment.signature))


def build_segment(
    issuance: RevocationIssuance,
    freshness: FreshnessStatement,
    segment_number: int,
    signer: KeyPair,
    shard: str = "",
) -> WALSegment:
    """CA-side: wrap one issuance batch as a signed WAL segment."""
    items = tuple(
        (serial.to_bytes(), number.to_bytes(VALUE_WIDTH, "big"))
        for number, serial in issuance.numbered_serials()
    )
    segment = WALSegment(
        ca_name=issuance.ca_name,
        shard=shard,
        segment_number=segment_number,
        first_seq=issuance.first_number,
        last_seq=issuance.first_number + len(items) - 1,
        root_after=issuance.signed_root,
        freshness_after=freshness,
        items=items,
        signature=b"",
    )
    return replace(segment, signature=signer.sign(segment_header_payload(segment)))


def segment_suffix_issuance(
    segment: WALSegment, have: int
) -> Optional[RevocationIssuance]:
    """The segment's content beyond ``have`` entries, as an issuance message.

    ``have`` is the applying replica's current size.  Leaves already covered
    are dropped (idempotence under duplicate delivery); an empty suffix
    returns ``None``.  A *gap* — the segment starting past ``have + 1`` —
    raises :class:`~repro.errors.DesynchronizedError`: the caller must fetch
    the missing predecessors or degrade explicitly to cold sync.
    """
    if segment.first_seq > have + 1:
        raise DesynchronizedError(
            f"WAL segment for {segment.ca_name!r} starts at revocation "
            f"{segment.first_seq} but the replica holds only {have}; "
            f"missing predecessors"
        )
    if segment.last_seq <= have:
        return None
    fresh = segment.items[have + 1 - segment.first_seq :]
    return RevocationIssuance(
        ca_name=segment.ca_name,
        serials=tuple(SerialNumber.from_bytes(key) for key, _ in fresh),
        first_number=have + 1,
        signed_root=segment.root_after,
    )


class ReplicationLog:
    """The CA's append-only archive of published WAL segments.

    One segment is appended per revocation batch, numbered to match the
    CA's issuance batch counter, so a replication cursor and an
    applied-batches cursor advance in lockstep on the RA side.
    """

    def __init__(self, ca_name: str, shard: str = "") -> None:
        self.ca_name = ca_name
        self.shard = shard
        self._segments: Dict[int, bytes] = {}
        #: Total segments appended since the log was created.
        self.segments_published = 0
        #: Total encoded segment bytes appended.
        self.bytes_published = 0

    def append(
        self,
        issuance: RevocationIssuance,
        freshness: FreshnessStatement,
        signer: KeyPair,
    ) -> bytes:
        """Build, sign, and archive the next segment; returns its raw bytes."""
        number = self.segments_published + 1
        segment = build_segment(issuance, freshness, number, signer, shard=self.shard)
        raw = encode_segment(segment)
        self._segments[number] = raw
        self.segments_published = number
        self.bytes_published += len(raw)
        return raw

    def segment(self, number: int) -> Optional[bytes]:
        """The raw bytes of segment ``number`` (``None`` when unknown)."""
        return self._segments.get(number)

    def latest(self) -> int:
        """The newest segment number (0 when nothing was appended yet)."""
        return self.segments_published


def rank_peers(
    location: GeoLocation, peers: Sequence[Tuple[object, GeoLocation]]
) -> List[object]:
    """Order anti-entropy candidates nearest-first for an RA at ``location``.

    Distance is the coarse inter-region RTT proxy from
    :func:`repro.cdn.geography.region_distance` (0 within a region), with
    the within-region ``distance_factor`` and the input order as
    deterministic tie-breakers — same-region peers always rank before any
    cross-region peer, which is what keeps a region outage's recovery
    traffic off the CA's transit links.
    """
    decorated = [
        (region_distance(location.region, peer_location.region),
         abs(location.distance_factor - peer_location.distance_factor),
         index,
         peer)
        for index, (peer, peer_location) in enumerate(peers)
    ]
    decorated.sort(key=lambda entry: entry[:3])
    return [peer for _, _, _, peer in decorated]
