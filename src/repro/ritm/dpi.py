"""Deep packet inspection for the Revocation Agent.

The paper's implementation (§VI) inspects every packet, decides whether it is
TLS, and — for handshake traffic — extracts the messages RITM cares about:
the ClientHello (to spot the RITM extension), the ServerHello (to catch the
session identifier), and the Certificate message (to learn the issuing CA and
serial number).  This module performs that classification on the simulated
packets' payloads and keeps counters that feed the Table III timing harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import TLSError
from repro.pki.certificate import CertificateChain
from repro.tls.extensions import has_ritm_support
from repro.tls.messages import (
    CertificateMessage,
    ClientHello,
    Finished,
    HandshakeType,
    ServerHello,
    parse_handshake_messages,
)
from repro.tls.records import ContentType, TLSRecord, looks_like_tls, parse_records


@dataclass
class InspectionResult:
    """Everything the RA learnt from one packet payload."""

    is_tls: bool
    records: List[TLSRecord] = field(default_factory=list)
    client_hello: Optional[ClientHello] = None
    server_hello: Optional[ServerHello] = None
    certificate_chain: Optional[CertificateChain] = None
    finished_seen: bool = False
    has_ritm_status: bool = False
    has_application_data: bool = False
    parse_error: Optional[str] = None

    @property
    def client_requests_ritm(self) -> bool:
        return self.client_hello is not None and has_ritm_support(
            list(self.client_hello.extensions)
        )


@dataclass
class DPIStatistics:
    """Counters mirroring the operations timed in Table III."""

    packets_inspected: int = 0
    tls_packets: int = 0
    non_tls_packets: int = 0
    handshake_records: int = 0
    certificates_parsed: int = 0
    parse_errors: int = 0


class DPIEngine:
    """Stateless packet classifier used by the RA's data path."""

    def __init__(self) -> None:
        self.stats = DPIStatistics()

    # -- fast path ------------------------------------------------------------

    def is_tls(self, payload: bytes) -> bool:
        """The cheap per-packet test (Table III, "TLS detection")."""
        self.stats.packets_inspected += 1
        if looks_like_tls(payload):
            self.stats.tls_packets += 1
            return True
        self.stats.non_tls_packets += 1
        return False

    # -- full inspection ----------------------------------------------------------

    def inspect(self, payload: bytes) -> InspectionResult:
        """Parse a TLS payload into the handshake facts RITM needs."""
        if not looks_like_tls(payload):
            return InspectionResult(is_tls=False)
        result = InspectionResult(is_tls=True)
        try:
            result.records = parse_records(payload)
        except TLSError as exc:
            self.stats.parse_errors += 1
            result.parse_error = str(exc)
            return result

        for record in result.records:
            if record.content_type == ContentType.HANDSHAKE:
                self.stats.handshake_records += 1
                self._inspect_handshake(record, result)
            elif record.content_type == ContentType.APPLICATION_DATA:
                result.has_application_data = True
            elif record.content_type == ContentType.RITM_STATUS:
                result.has_ritm_status = True
        return result

    def _inspect_handshake(self, record: TLSRecord, result: InspectionResult) -> None:
        try:
            messages = parse_handshake_messages(record.payload)
        except TLSError as exc:
            self.stats.parse_errors += 1
            result.parse_error = str(exc)
            return
        for handshake_type, message in messages:
            if handshake_type == HandshakeType.CLIENT_HELLO:
                result.client_hello = message
            elif handshake_type == HandshakeType.SERVER_HELLO:
                result.server_hello = message
            elif handshake_type == HandshakeType.CERTIFICATE:
                self.stats.certificates_parsed += 1
                result.certificate_chain = message.chain
            elif handshake_type == HandshakeType.FINISHED:
                result.finished_seen = True
