"""RA-side dissemination: pulling dictionary updates from the CDN every Δ.

Implements the pull loop of §III/§VI: every Δ each RA issues an HTTP GET for
each CA's small *head* object from its closest edge server.  If the head
shows the replica is current, only the freshness statement is applied (the
common case whose cost dominates Fig. 7).  If the head's size is larger than
the replica's, the RA fetches the missing issuance batches (or falls back to
the sync protocol) and applies them.

For CAs running expiry-split dictionaries (§VIII, ``RITMConfig.sharded``)
the cycle gains one discovery step: the RA first pulls the CA's small shard
*index* object, then runs the ordinary head/issuance cycle once per live
shard (each shard is an independent dictionary under its shard name), and
every pruning period deletes replicas of shards whose expiry window has
passed — the storage reclamation the §VIII relaxation is about.  The shard
index itself is unauthenticated, but it can only direct the RA *towards*
shards: every shard's content is still verified against that shard's
CA-signed root, so a forged index can cause wasted fetches, never a false
revocation status.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.cdn.geography import GeoLocation, region_distance
from repro.cdn.network import CDNNetwork
from repro.crypto.signing import CAKeyring, PublicKey
from repro.dictionary.sharding import (
    MAX_CERTIFICATE_LIFETIME_SECONDS,
    ShardKey,
    shard_name,
)
from repro.dictionary.sync import SyncRequest, SyncServer
from repro.errors import (
    CDNError,
    DesynchronizedError,
    DictionaryError,
    ReplayError,
    SignatureError,
    TLSError,
)
from repro.ritm.agent import RevocationAgent
from repro.ritm.ca_service import (
    RITMCertificationAuthority,
    head_path,
    issuance_path,
    keys_path,
    shard_index_path,
)
from repro.ritm.messages import (
    decode_head,
    decode_issuance,
    decode_key_announcements,
    decode_shard_index,
)
from repro.ritm.replication import (
    decode_segment,
    segment_path,
    segment_suffix_issuance,
    verify_segment,
)
from repro.store.durable import atomic_write


@dataclass
class PullResult:
    """What one Δ-periodic pull cycle transferred and applied."""

    time: float
    bytes_downloaded: int = 0
    latency_seconds: float = 0.0
    heads_checked: int = 0
    freshness_applied: int = 0
    issuances_applied: int = 0
    serials_applied: int = 0
    resyncs: int = 0
    errors: List[str] = field(default_factory=list)
    #: Sharded-mode accounting (zero for unsharded CAs).
    shard_indexes_checked: int = 0
    shards_pruned: int = 0
    entries_pruned: int = 0
    bytes_reclaimed: int = 0
    #: Hot-path verification engine accounting (docs/PERFORMANCE.md):
    #: root-signature checks answered from the agent's verified-root cache
    #: during this cycle, full Ed25519 verifications actually performed
    #: (batched through ``crypto.signing.verify_batch``), and proof-cache
    #: entries evicted by this cycle's refreshes/resyncs/prunes.
    root_cache_hits: int = 0
    root_signatures_verified: int = 0
    proofs_invalidated: int = 0
    #: Adversarial control-plane accounting (docs/THREATS.md): heads/indexes
    #: skipped as benign CDN staleness (within the replay window), heads or
    #: freshness statements rejected as replays (beyond the window or older
    #: than already-applied authenticated state), and CA key rotations the
    #: RA learned and validated this cycle.
    stale_heads_ignored: int = 0
    replays_rejected: int = 0
    key_rotations_applied: int = 0
    #: Streaming-replication accounting (docs/REPLICATION.md): WAL segments
    #: verified and applied this cycle, the subset relayed by a peer rather
    #: than fetched CA-direct, raw segment bytes transferred, per-CA
    #: anti-entropy exchanges attempted against a peer, explicit
    #: degradations to the cold sync protocol, and segments rejected for
    #: failing structural or signature verification.
    segments_applied: int = 0
    segments_from_peer: int = 0
    segment_bytes_downloaded: int = 0
    peer_syncs: int = 0
    cold_sync_fallbacks: int = 0
    segments_rejected: int = 0


def _cursor_checksum(cursor_state: Dict[str, Dict[str, int]]) -> int:
    """CRC32 over the canonical JSON of the replay-cursor block.

    Not a MAC — it distinguishes honest old checkpoints (no cursor block)
    and corruption from a usable block; a deliberately doctored block that
    also fixes the CRC only costs the restarted RA a cold replay window,
    because restore never *trusts* cursors for anything but staleness
    filtering.
    """
    return zlib.crc32(
        json.dumps(cursor_state, sort_keys=True).encode("utf-8")
    )


class RADisseminationClient:
    """The piece of an RA that talks to the dissemination network."""

    def __init__(
        self,
        agent: RevocationAgent,
        cdn: CDNNetwork,
        location: GeoLocation,
        sync_servers: Optional[Dict[str, SyncServer]] = None,
    ) -> None:
        self.agent = agent
        self.cdn = cdn
        self.location = location
        #: Direct CA sync endpoints, used when the CDN does not (yet) have the
        #: needed issuance batches — the paper's desynchronization recovery.
        self.sync_servers = sync_servers if sync_servers is not None else {}
        #: Highest issuance batch already applied, per CA.
        self._applied_batches: Dict[str, int] = {}
        self.pull_history: List[PullResult] = []
        #: Sharded CAs: base CA name → (public key, per-shard sync lookup).
        self._sharded_cas: Dict[str, tuple] = {}
        #: Pull cycles completed per sharded CA (drives the pruning cadence).
        self._shard_pulls: Dict[str, int] = {}
        #: Replay windows: highest publication sequence observed per head
        #: (and per shard index), plus consecutive-rejection counters that
        #: let a forged-high cursor self-heal instead of bricking the pull
        #: loop forever (docs/THREATS.md).
        self._head_cursors: Dict[str, int] = {}
        self._head_stale_counts: Dict[str, int] = {}
        self._index_cursors: Dict[str, int] = {}
        self._index_stale_counts: Dict[str, int] = {}
        #: Streaming replication (docs/REPLICATION.md): highest contiguously
        #: applied WAL segment per CA, and the verified raw segment bytes
        #: retained so this RA can relay them to anti-entropy peers.
        self._segment_cursors: Dict[str, int] = {}
        self._segment_archive: Dict[str, Dict[int, bytes]] = {}
        #: Opt-in: when set, every :meth:`pull` walks the CA's WAL segment
        #: stream *before* the head check, so serials arrive as verified
        #: segments (and the head then only refreshes freshness).  Off by
        #: default — the legacy batch-driven pull stays byte-identical.
        self.segment_streaming = False

    def register_sync_server(self, ca_name: str, server: SyncServer) -> None:
        """Register the CA's direct sync endpoint for desync recovery."""
        self.sync_servers[ca_name] = server

    # -- crash recovery (docs/STORAGE.md) ---------------------------------------

    #: File holding the client-side warm-start state inside a checkpoint.
    STATE_FILENAME = "dissemination.json"

    def checkpoint(self, directory) -> int:
        """Persist the agent plus this client's applied-batch cursors.

        The cursors are what turn a warm restart into a *delta* fetch: the
        restored client resumes from the last issuance batch it committed
        instead of re-walking (or re-downloading) the CA's whole batch
        history.  Replay cursors are persisted under their own CRC32 so a
        restore can tell tampering from an honest pre-replay-window
        checkpoint.  Returns the number of replicas persisted.
        """
        cursor_state = {
            "head_cursors": dict(self._head_cursors),
            "index_cursors": dict(self._index_cursors),
        }
        # Replication cursors travel as their own CRC'd block (not folded
        # into the replay-cursor checksum) so pre-replication checkpoints —
        # and checkpoints written by pre-replication builds — keep restoring
        # byte-for-byte as before, and a corrupted segment block degrades
        # only segment catch-up, never the replay windows.
        segment_state = {"segment_cursors": dict(self._segment_cursors)}
        state = {
            "format": 1,
            "applied_batches": dict(self._applied_batches),
            "shard_pulls": dict(self._shard_pulls),
            "cursor_checksum": _cursor_checksum(cursor_state),
            "segment_cursor_checksum": _cursor_checksum(segment_state),
            **cursor_state,
            **segment_state,
        }
        # Cursors are written first (atomically), the agent manifest last:
        # the manifest is the checkpoint's commit point, so a crash at any
        # point during checkpointing leaves either no restorable checkpoint
        # at all or a complete one — never a warm-startable checkpoint
        # whose missing cursors silently downgrade the next restart to a
        # full batch-history refetch.
        os.makedirs(str(directory), exist_ok=True)
        atomic_write(
            os.path.join(str(directory), self.STATE_FILENAME),
            (json.dumps(state, indent=2, sort_keys=True) + "\n").encode("utf-8"),
        )
        return self.agent.checkpoint(directory)

    def restore(self, directory) -> int:
        """Warm-start the agent and this client from a checkpoint.

        Applied-batch cursors are restored only for dictionaries whose
        replica actually warm-started (holds a verified root): a cursor
        without its replica state would make the next pull skip batches the
        replica never applied.  Replay cursors are restored only when their
        checksum validates — a tampered (or truncated) cursor block degrades
        the restart to cold replay state, which re-learns sequences from the
        next pull; it never silently accepts a forged cursor.  Returns the
        number of replicas restored.
        """
        restored = self.agent.restore(directory)
        path = os.path.join(str(directory), self.STATE_FILENAME)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                state = json.load(handle)
            cursors = {
                str(name): int(batch)
                for name, batch in state.get("applied_batches", {}).items()
            }
            shard_pulls = {
                str(name): int(count)
                for name, count in state.get("shard_pulls", {}).items()
            }
        except (OSError, ValueError, TypeError, AttributeError):
            return restored
        for name, batch in cursors.items():
            replica = self.agent.replicas.get(name)
            if replica is not None and replica.signed_root is not None:
                self._applied_batches[name] = batch
        self._shard_pulls.update(shard_pulls)
        try:
            cursor_state = {
                "head_cursors": {
                    str(name): int(seq)
                    for name, seq in state.get("head_cursors", {}).items()
                },
                "index_cursors": {
                    str(name): int(seq)
                    for name, seq in state.get("index_cursors", {}).items()
                },
            }
            if state.get("cursor_checksum") == _cursor_checksum(cursor_state):
                self._head_cursors.update(cursor_state["head_cursors"])
                self._index_cursors.update(cursor_state["index_cursors"])
        except (ValueError, TypeError, AttributeError):
            pass  # malformed cursor block: cold replay state, never trust it
        try:
            segment_state = {
                "segment_cursors": {
                    str(name): int(number)
                    for name, number in state.get("segment_cursors", {}).items()
                }
            }
            if state.get("segment_cursor_checksum") == _cursor_checksum(segment_state):
                for name, number in segment_state["segment_cursors"].items():
                    replica = self.agent.replicas.get(name)
                    if replica is not None and replica.signed_root is not None:
                        # Like applied-batch cursors: only meaningful for a
                        # replica that actually warm-started — a cursor
                        # without its content would skip segments forever.
                        self._segment_cursors[name] = number
        except (ValueError, TypeError, AttributeError):
            pass  # malformed segment block: catch up from scratch or a peer
        return restored

    # -- streaming replication (docs/REPLICATION.md) -----------------------------

    def replication_cursor(self, ca_name: str) -> int:
        """Highest contiguously applied WAL segment for one CA (0 = none)."""
        return self._segment_cursors.get(ca_name, 0)

    def archived_segment(self, ca_name: str, number: int) -> Optional[bytes]:
        """Raw bytes of a verified, retained segment (``None`` if unknown).

        This is the anti-entropy serving side: peers relay exactly the
        bytes they verified, and every receiver re-verifies against its own
        trust anchor, so the archive never has to be trusted.
        """
        return self._segment_archive.get(ca_name, {}).get(number)

    def _replicated_cas(self):
        """(CA name, replica) pairs eligible for segment replication.

        Shard replicas are excluded — sharded CAs keep the per-shard
        issuance objects as their stream for now.
        """
        shard_replica_names = self.agent.shard_replica_names()
        return [
            (ca_name, replica)
            for ca_name, replica in list(self.agent.replicas.items())
            if ca_name not in shard_replica_names
        ]

    def sync_via_segments(self, now: float) -> PullResult:
        """Catch every replica up by walking the CA's segment stream CA-direct.

        Fetches ``segment/<cursor+1>`` onward from the CDN until the stream
        ends, verifying and applying each segment.  A segment that fails
        verification (or exposes a gap) stops the walk for that CA and is
        recorded; the next ordinary pull recovers through the batch or sync
        path.  Returns the recorded :class:`PullResult` (also appended to
        :attr:`pull_history`).
        """
        result = PullResult(time=now)
        self._sync_segments_into(result, now)
        self.pull_history.append(result)
        return result

    def _sync_segments_into(self, result: PullResult, now: float) -> None:
        """The CA-direct segment walk, accumulating into ``result``."""
        for ca_name, replica in self._replicated_cas():
            while True:
                path = segment_path(ca_name, self.replication_cursor(ca_name) + 1)
                if not self.cdn.origin.exists(path):
                    break
                download = self.cdn.download(
                    path, self.location, now, source=self.agent.name
                )
                result.bytes_downloaded += download.bytes_on_wire
                result.segment_bytes_downloaded += download.bytes_on_wire
                result.latency_seconds += download.latency_seconds
                try:
                    self._apply_segment_bytes(
                        ca_name, replica, download.content, now, result
                    )
                except (TLSError, SignatureError, DictionaryError) as exc:
                    result.segments_rejected += 1
                    result.errors.append(f"{ca_name}: {exc}")
                    break

    def sync_from_peer(self, peer: "RADisseminationClient", now: float) -> PullResult:
        """RA→RA anti-entropy: catch up from a peer's verified segment archive.

        For every replicated CA the cursors are compared and the missing
        segments are relayed peer-to-peer — each one re-verified against
        *this* RA's trust anchor before it touches the replica, so the peer
        can withhold progress but never forge it.  When the peer cannot
        supply a contiguous run up to its claimed cursor (archive gap,
        tampered relay, equivocation attempt), the CA's sync protocol is
        used as the **explicit** cold fallback and counted as such.  The
        latency model charges one inter-region round trip per relayed
        segment plus transfer time at this RA's downstream bandwidth.
        """
        result = PullResult(time=now)
        hop_rtt = max(0.001, region_distance(self.location.region, peer.location.region))
        for ca_name, replica in self._replicated_cas():
            peer_cursor = peer.replication_cursor(ca_name)
            if peer_cursor <= self.replication_cursor(ca_name):
                continue
            result.peer_syncs += 1
            degraded = False
            while self.replication_cursor(ca_name) < peer_cursor:
                raw = peer.archived_segment(ca_name, self.replication_cursor(ca_name) + 1)
                if raw is None:
                    degraded = True
                    break
                result.bytes_downloaded += len(raw)
                result.segment_bytes_downloaded += len(raw)
                result.latency_seconds += hop_rtt + len(raw) / self.location.bandwidth_to_edge()
                before = self.replication_cursor(ca_name)
                try:
                    self._apply_segment_bytes(
                        ca_name, replica, raw, now, result, from_peer=True
                    )
                except (TLSError, SignatureError, DictionaryError) as exc:
                    result.segments_rejected += 1
                    result.errors.append(f"{ca_name}: peer relay rejected: {exc}")
                    degraded = True
                    break
                if self.replication_cursor(ca_name) == before:
                    # The peer answered the requested number with an
                    # already-covered segment; re-asking would loop forever.
                    degraded = True
                    break
            if degraded:
                # Never silent: the peer claimed more history than it could
                # prove, so fall back to the CA's sync protocol and say so.
                result.cold_sync_fallbacks += 1
                self._resync(ca_name, replica, result)
        self.pull_history.append(result)
        return result

    def _apply_segment_bytes(
        self,
        ca_name: str,
        replica,
        raw: bytes,
        now: float,
        result: PullResult,
        from_peer: bool = False,
    ) -> int:
        """Verify one encoded segment and apply it to its replica.

        Enforces, in order: structural integrity (framing + every CRC), the
        CA header signature under this RA's own keyring, segment-cursor
        contiguity, and revocation-number contiguity — then applies the
        not-yet-covered suffix through the same ``update_many`` transaction
        as the pull path (rollback on root mismatch).  Duplicate delivery
        is a verified no-op.  Returns serials newly applied.
        """
        segment = decode_segment(raw)
        if segment.ca_name != ca_name or segment.shard:
            raise TLSError(
                f"WAL segment addressed to {segment.ca_name!r}/{segment.shard!r} "
                f"applied to {ca_name!r}'s replica"
            )
        verifier = replica.ca_public_key
        if hasattr(verifier, "advance"):
            verifier.advance(int(now))
        if not verify_segment(segment, verifier):
            raise SignatureError(
                f"WAL segment {segment.segment_number} for {ca_name!r} is not "
                f"signed by an acceptable CA key"
            )
        cursor = self._segment_cursors.get(ca_name, 0)
        if segment.segment_number <= cursor:
            return 0  # duplicate delivery: already covered, idempotent
        if segment.segment_number != cursor + 1:
            raise DesynchronizedError(
                f"WAL segment stream for {ca_name!r} has a gap: expected "
                f"segment {cursor + 1}, got {segment.segment_number}"
            )
        issuance = segment_suffix_issuance(segment, replica.size)
        applied = 0
        if issuance is not None:
            applied = self.agent.apply_issuances(ca_name, [issuance])
            result.issuances_applied += 1
            result.serials_applied += applied
        try:
            replica.apply_freshness(segment.freshness_after)
            result.freshness_applied += 1
        except (ReplayError, DictionaryError):
            # The replica already holds newer authenticated freshness (it
            # pulled a head after this segment was cut): keep the newer one.
            pass
        self._segment_cursors[ca_name] = segment.segment_number
        self._segment_archive.setdefault(ca_name, {})[segment.segment_number] = raw
        # Segment numbers advance in lockstep with the CA's issuance batch
        # counter, so a later head-driven catch-up must not refetch batches
        # the segment stream already covered.
        self._applied_batches[ca_name] = max(
            self._applied_batches.get(ca_name, 0), segment.segment_number
        )
        result.segments_applied += 1
        if from_peer:
            result.segments_from_peer += 1
        return applied

    def register_sharded_ca(
        self,
        ca_name: str,
        public_key: PublicKey,
        width_seconds: int,
        sync_server_for: Optional[Callable[[int], Optional[SyncServer]]] = None,
    ) -> None:
        """Register a CA running expiry-split dictionaries (§VIII).

        The pull cycle will discover this CA's shards through its shard
        index object and replicate each live shard under its shard name;
        ``sync_server_for`` (shard index → :class:`SyncServer`) provides the
        per-shard desync-recovery endpoints.  ``width_seconds`` comes from
        deployment configuration (the same :class:`RITMConfig` both sides
        share), never from the unauthenticated index object — a published
        index advertising a different width is treated as malformed.
        """
        self.agent.register_sharded_ca(ca_name, width_seconds)
        self._sharded_cas[ca_name] = (public_key, sync_server_for)

    # -- the Δ-periodic pull -------------------------------------------------------

    def pull(self, now: float, link=None) -> PullResult:
        """One pull cycle over every CA the RA replicates.

        ``link`` (a :class:`repro.net.Link`, optional) models the RA's
        uplink: when set, one request/response round trip sized by the
        cycle's actual head checks and downloaded bytes is added to the
        recorded latency.  ``None`` (the default) keeps the pre-fleet
        behaviour where latency is purely the CDN path model's.
        """
        result = PullResult(time=now)
        root_stats = self.agent.root_cache.stats
        proof_stats = self.agent.proof_cache.stats
        hits_before = root_stats.hits
        misses_before = root_stats.misses
        invalidations_before = proof_stats.invalidations
        if self.segment_streaming:
            # Streaming mode: apply the WAL segment stream first, so the
            # head check below finds the replica current and only applies
            # freshness — serials travel as verified segments.
            self._sync_segments_into(result, now)
        for ca_name in self._sharded_cas:
            index = None
            try:
                index = self._pull_sharded(ca_name, now, result)
            except (CDNError, DictionaryError, SignatureError, TLSError) as exc:
                result.errors.append(f"{ca_name}: {exc}")
            # Pruning depends only on the local clock, so it must not be
            # suppressible by a missing/forged index object: expired shard
            # replicas are reclaimed whether or not the index decoded.
            self._prune_sharded(ca_name, index, now, result)
        shard_replica_names = self.agent.shard_replica_names()
        for ca_name, replica in list(self.agent.replicas.items()):
            if ca_name in shard_replica_names:
                continue  # shard replicas were handled by their CA's index pull
            try:
                self._pull_one(ca_name, replica, now, result)
            except (CDNError, DictionaryError, SignatureError) as exc:
                # One CA's bad objects (or forged signatures) must never
                # abort the pull cycle for every other healthy CA.
                result.errors.append(f"{ca_name}: {exc}")
        result.root_cache_hits = root_stats.hits - hits_before
        result.root_signatures_verified = root_stats.misses - misses_before
        result.proofs_invalidated = proof_stats.invalidations - invalidations_before
        if link is not None:
            result.latency_seconds += link.round_trip_time(
                request_bytes=64 * max(1, result.heads_checked),
                response_bytes=result.bytes_downloaded,
            )
        self.pull_history.append(result)
        return result

    def _pull_sharded(self, ca_name: str, now: float, result: PullResult):
        """Discovery + per-shard pulls for one sharded CA; returns the index."""
        public_key, sync_server_for = self._sharded_cas[ca_name]
        download = self.cdn.download(shard_index_path(ca_name), self.location, now)
        result.bytes_downloaded += download.bytes_on_wire
        result.latency_seconds += download.latency_seconds
        result.shard_indexes_checked += 1
        index = decode_shard_index(download.content)

        # The width registered at attach time (from deployment config) is
        # authoritative: the index is unauthenticated, so a forged width
        # must not re-map (or mass-expire) the agent's shard replicas.  A
        # mismatch is treated as a malformed object, like any other
        # undecodable index — checked before the replay window so a forged
        # index can never hide behind "benign staleness".
        width = self.agent.shard_widths[ca_name]
        if index.width_seconds != width:
            raise TLSError(
                f"shard index for {ca_name!r} advertises width "
                f"{index.width_seconds}s but the agent is configured with "
                f"{width}s"
            )
        if self._replay_window_check(
            ca_name, index.sequence, self._index_cursors, self._index_stale_counts,
            "shard index", result,
        ):
            return index
        self._index_cursors[ca_name] = index.sequence
        plausible_end = now + MAX_CERTIFICATE_LIFETIME_SECONDS + width
        # Dedup before iterating: a forged index repeating one live entry a
        # million times must cost one head fetch, not a million.  Distinct
        # in-range live indices are bounded by ~lifetime/width + 2.
        for shard_idx in sorted(set(index.live)):
            key = ShardKey(shard_idx, width)
            if key.is_expired(now):
                # A stale (cached) index can still list a shard whose window
                # has passed locally; re-replicating it would just be pruned
                # again, double-counting reclaimed storage and applied serials.
                continue
            if key.window_start > plausible_end:
                # No certificate can expire past now + the CA/B lifetime cap,
                # so a (forged or corrupt) index must not make the RA
                # register unbounded far-future replicas that never prune.
                result.errors.append(
                    f"{ca_name}: shard index lists implausible far-future "
                    f"shard {shard_idx}"
                )
                continue
            name = shard_name(ca_name, shard_idx)
            try:
                replica = self.agent.register_shard_replica(
                    ca_name, shard_idx, public_key
                )
                if sync_server_for is not None and name not in self.sync_servers:
                    server = sync_server_for(shard_idx)
                    if server is not None:
                        self.sync_servers[name] = server
                self._pull_one(name, replica, now, result)
            except (CDNError, DictionaryError, SignatureError) as exc:
                result.errors.append(f"{name}: {exc}")
        return index

    def _prune_sharded(self, ca_name: str, index, now: float, result: PullResult) -> None:
        """Reclaim expired shard replicas of one sharded CA.

        Runs every pull (whether or not the index fetch succeeded) and
        prunes when the cadence fires — or promptly when the decoded
        index's retired list names a shard the RA still holds.  Either way
        replicas are dropped solely by the local-clock window check, so a
        forged retired list cannot make the RA delete live shards.
        """
        width = self.agent.shard_widths.get(ca_name)
        if width is None:
            return
        held_indices = self.agent.shard_replicas(ca_name)
        ca_retired_held = index is not None and any(
            idx in held_indices and ShardKey(idx, width).is_expired(now)
            for idx in index.retired
        )
        self._shard_pulls[ca_name] = self._shard_pulls.get(ca_name, 0) + 1
        if (
            ca_retired_held
            or self._shard_pulls[ca_name] % self.agent.config.prune_every_periods == 0
        ):
            held = [shard_name(ca_name, idx) for idx in held_indices]
            entries, bytes_freed = self.agent.prune_shard_replicas(ca_name, now)
            for name in held:
                if name not in self.agent.replicas:
                    result.shards_pruned += 1
                    self._applied_batches.pop(name, None)
                    self.sync_servers.pop(name, None)
            result.entries_pruned += entries
            result.bytes_reclaimed += bytes_freed

    def _replay_window_check(
        self,
        name: str,
        sequence: int,
        cursors: Dict[str, int],
        stale_counts: Dict[str, int],
        kind: str,
        result: PullResult,
    ) -> bool:
        """Classify a publication sequence against its replay cursor.

        Returns ``True`` when the object should be *skipped* as benign CDN
        staleness (at most ``replay_window`` publications behind the newest
        sequence this RA has seen).  Raises :class:`ReplayError` when it is
        further behind — a re-presented old object, the §V replay attack.
        Returns ``False`` when the object is current.

        Sequences are unauthenticated (a CDN cannot sign), so the cursor
        self-heals: after more than ``replay_window`` *consecutive*
        rejections for one name the cursor resets, bounding how long a
        forged-high sequence can starve an RA of honest updates.  Safety
        never rests on this counter — replayed signed content is still
        rejected by hash-chain linkage and monotonic freshness age.
        """
        cursor = cursors.get(name, 0)
        behind = cursor - sequence
        if behind <= 0:
            stale_counts.pop(name, None)
            return False
        window = self.agent.config.replay_window
        if behind <= window:
            result.stale_heads_ignored += 1
            return True
        stale = stale_counts.get(name, 0) + 1
        if stale > window:
            stale_counts.pop(name, None)
            cursors.pop(name, None)
        else:
            stale_counts[name] = stale
        result.replays_rejected += 1
        raise ReplayError(
            f"{kind} for {name!r} re-presents publication sequence "
            f"{sequence}, {behind} behind the newest observed ({cursor}) — "
            f"outside the replay window of {window}"
        )

    def _pull_one(self, ca_name: str, replica, now: float, result: PullResult) -> None:
        verifier = replica.ca_public_key
        if hasattr(verifier, "advance"):
            # Keyring verifiers are time-scoped: move the acceptance clock
            # forward so retired keys expire out of their overlap windows.
            verifier.advance(int(now))
        download = self.cdn.download(head_path(ca_name), self.location, now)
        result.bytes_downloaded += download.bytes_on_wire
        result.latency_seconds += download.latency_seconds
        result.heads_checked += 1
        head = decode_head(download.content)

        if self._replay_window_check(
            ca_name, head.sequence, self._head_cursors, self._head_stale_counts,
            "head", result,
        ):
            return

        self.agent.consistency.observe_root(head.signed_root)
        try:
            self._apply_head(ca_name, replica, head, now, result)
        except SignatureError:
            # A head the current keyring cannot verify may simply be signed
            # by a key the CA rotated in since our last pull: learn the
            # announcement chain (authenticated back to the genesis key) and
            # retry once.  A genuinely forged head fails again and the error
            # propagates like any other signature failure.
            if not self._learn_rotation(ca_name, replica, now, result):
                raise
            self._apply_head(ca_name, replica, head, now, result)
        self._head_cursors[ca_name] = head.sequence

    def _apply_head(self, ca_name: str, replica, head, now: float, result: PullResult) -> None:
        """Apply one decoded, replay-checked head to its replica."""
        if replica.signed_root is None or replica.is_desynchronized(head.size):
            applied = self._catch_up(ca_name, replica, head, now, result)
            result.serials_applied += applied
            if replica.size == head.size and (
                replica.signed_root is None
                or head.signed_root.timestamp > replica.signed_root.timestamp
            ):
                # Bootstrap (empty dictionary) or a re-signed root over the
                # content we just caught up to.
                replica.install_root(head.signed_root)
        elif head.signed_root.root == replica.signed_root.root:
            # Same content; a newer signed root only appears when the CA's
            # hash chain ran out and it re-signed the same dictionary.
            if head.signed_root.timestamp > replica.signed_root.timestamp:
                # Epoch refresh: retire the old epoch's cached verdicts, then
                # install (verifying and memoizing the new root).  Cached
                # proofs survive — the root *hash* is unchanged, so they are
                # still byte-identical to freshly built ones.
                self.agent.root_cache.invalidate_ca(ca_name)
                replica.install_root(head.signed_root)

        try:
            replica.apply_freshness(head.freshness)
        except ReplayError:
            # The authenticated backstop fired: this statement is older than
            # freshness already applied to the replica, so something (a
            # malicious edge, a §V attacker) re-presented signed past state.
            result.replays_rejected += 1
            raise
        result.freshness_applied += 1

    def _learn_rotation(self, ca_name: str, replica, now: float, result: PullResult) -> bool:
        """Fetch and validate the CA's key-announcement chain from the CDN.

        Returns ``True`` when at least one new key was enrolled into the
        replica's keyring (so the caller should retry verification), and
        ``False`` when the chain is unavailable, invalid, or adds nothing —
        rotation learning is strictly additive and anchored at the genesis
        key, so a forged chain can never displace trusted keys.
        """
        if not isinstance(replica.ca_public_key, CAKeyring):
            return False
        try:
            download = self.cdn.download(keys_path(ca_name), self.location, now)
            result.bytes_downloaded += download.bytes_on_wire
            result.latency_seconds += download.latency_seconds
            announcements = decode_key_announcements(download.content)
            learned = self.agent.learn_key_announcements(ca_name, announcements)
        except (CDNError, TLSError, SignatureError) as exc:
            result.errors.append(f"{ca_name}: key-announcement fetch failed: {exc}")
            return False
        if learned:
            result.key_rotations_applied += learned
            return True
        return False

    def _catch_up(self, ca_name, replica, head, now, result: PullResult) -> int:
        """Fetch the missing issuance batches and apply them in one store
        transaction (or fall back to sync).

        All fetchable, contiguous batches are collected first and handed to
        the replica at once (``RevocationAgent.apply_issuances``), so one
        pull cycle costs one merge and one suffix rehash regardless of how
        many batches were queued since the last pull.
        """
        # ``committed`` only ever advances over batches whose content is
        # durably in the replica (applied, already present, or covered by a
        # successful resync) — a batch that failed to apply is refetched on
        # the next pull rather than skipped forever.
        committed = self._applied_batches.get(ca_name, 0)
        batch = committed
        pending = []
        have = replica.size
        needs_resync = False
        while have < head.size:
            next_batch = batch + 1
            path = issuance_path(ca_name, next_batch)
            if not self.cdn.origin.exists(path):
                needs_resync = True
                break
            batch = next_batch
            download = self.cdn.download(path, self.location, now)
            result.bytes_downloaded += download.bytes_on_wire
            result.latency_seconds += download.latency_seconds
            issuance = decode_issuance(download.content)
            if issuance.first_number > have + 1:
                # A gap: earlier batches were purged or missed; full resync.
                needs_resync = True
                break
            if issuance.first_number <= have:
                if not pending:
                    committed = batch  # old batch, content already in the replica
                continue
            pending.append(issuance)
            have += len(issuance.serials)
        applied_serials = 0
        if pending:
            try:
                applied_serials += self.agent.apply_issuances(ca_name, pending)
                result.issuances_applied += len(pending)
                committed += len(pending)  # pending batches are consecutive
            except (DictionaryError, SignatureError) as exc:
                # Tampered batch content (update_many rolled the replica back
                # to its last verified state) or a forged root signature
                # (rejected before anything was staged): either way the sync
                # protocol can recover the honest suffix directly.
                result.errors.append(f"{ca_name}: {exc}")
                needs_resync = True
        if needs_resync:
            resynced = self._resync(ca_name, replica, result)
            if resynced is not None:
                applied_serials += resynced
                committed = batch  # everything fetched so far is now covered
        self._applied_batches[ca_name] = committed
        return applied_serials

    def _resync(self, ca_name: str, replica, result: PullResult) -> Optional[int]:
        """Full-state recovery via the CA's sync endpoint.

        Returns the number of serials applied, or ``None`` when no sync
        server is known (the caller must not mark fetched batches as
        consumed in that case).
        """
        server = self.sync_servers.get(ca_name)
        if server is None:
            result.errors.append(f"{ca_name}: desynchronized and no sync server known")
            return None
        # Resync replaces the replica's verified state wholesale: evict the
        # dictionary's cached proofs and root verdicts up front so the cache
        # only ever holds entries derived from the recovered state.
        self.agent.proof_cache.invalidate_dictionary(ca_name)
        self.agent.root_cache.invalidate_ca(ca_name)
        response = server.serve(SyncRequest(ca_name=ca_name, have_count=replica.size))
        result.bytes_downloaded += response.encoded_size()
        if response.serials:
            replica.update(response.as_issuance())
        else:
            replica.install_root(response.signed_root)
        if response.freshness is not None:
            replica.apply_freshness(response.freshness)
        result.resyncs += 1
        return len(response.serials)

    # -- bookkeeping ------------------------------------------------------------------

    def total_bytes_downloaded(self) -> int:
        """Bytes fetched from the CDN across every recorded pull cycle."""
        return sum(pull.bytes_downloaded for pull in self.pull_history)

    def average_pull_latency(self) -> float:
        """Mean client-observed latency per pull cycle, in seconds."""
        if not self.pull_history:
            return 0.0
        return sum(pull.latency_seconds for pull in self.pull_history) / len(self.pull_history)


def attach_agent_to_cas(
    agent: RevocationAgent,
    cas: List[RITMCertificationAuthority],
    cdn: CDNNetwork,
    location: GeoLocation,
) -> RADisseminationClient:
    """Wire an RA to a set of RITM CAs: register replicas and sync servers.

    Sharded CAs are registered for shard discovery instead of getting a
    single base-name replica; their per-shard replicas appear as the pull
    cycle reads the CA's shard index.  Unsharded CAs are registered under a
    fresh per-agent :class:`~repro.crypto.signing.CAKeyring` anchored at the
    CA's genesis key, so each RA independently learns (and time-scopes) any
    later key rotations from the announcement chain.
    """
    client = RADisseminationClient(agent, cdn, location)
    for ca in cas:
        if ca.sharded:
            client.register_sharded_ca(
                ca.name,
                ca.public_key,
                ca.config.shard_width_seconds,
                ca.sync_server_for,
            )
        else:
            agent.register_ca(ca.name, CAKeyring.single(ca.public_key))
            client.register_sync_server(ca.name, ca.sync_server)
    return client
