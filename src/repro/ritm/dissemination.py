"""RA-side dissemination: pulling dictionary updates from the CDN every Δ.

Implements the pull loop of §III/§VI: every Δ each RA issues an HTTP GET for
each CA's small *head* object from its closest edge server.  If the head
shows the replica is current, only the freshness statement is applied (the
common case whose cost dominates Fig. 7).  If the head's size is larger than
the replica's, the RA fetches the missing issuance batches (or falls back to
the sync protocol) and applies them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cdn.geography import GeoLocation
from repro.cdn.network import CDNNetwork
from repro.dictionary.sync import SyncRequest, SyncServer
from repro.errors import CDNError, DictionaryError, SignatureError
from repro.ritm.agent import RevocationAgent
from repro.ritm.ca_service import RITMCertificationAuthority, head_path, issuance_path
from repro.ritm.messages import decode_head, decode_issuance


@dataclass
class PullResult:
    """What one Δ-periodic pull cycle transferred and applied."""

    time: float
    bytes_downloaded: int = 0
    latency_seconds: float = 0.0
    heads_checked: int = 0
    freshness_applied: int = 0
    issuances_applied: int = 0
    serials_applied: int = 0
    resyncs: int = 0
    errors: List[str] = field(default_factory=list)


class RADisseminationClient:
    """The piece of an RA that talks to the dissemination network."""

    def __init__(
        self,
        agent: RevocationAgent,
        cdn: CDNNetwork,
        location: GeoLocation,
        sync_servers: Optional[Dict[str, SyncServer]] = None,
    ) -> None:
        self.agent = agent
        self.cdn = cdn
        self.location = location
        #: Direct CA sync endpoints, used when the CDN does not (yet) have the
        #: needed issuance batches — the paper's desynchronization recovery.
        self.sync_servers = sync_servers if sync_servers is not None else {}
        #: Highest issuance batch already applied, per CA.
        self._applied_batches: Dict[str, int] = {}
        self.pull_history: List[PullResult] = []

    def register_sync_server(self, ca_name: str, server: SyncServer) -> None:
        """Register the CA's direct sync endpoint for desync recovery."""
        self.sync_servers[ca_name] = server

    # -- the Δ-periodic pull -------------------------------------------------------

    def pull(self, now: float) -> PullResult:
        """One pull cycle over every CA the RA replicates."""
        result = PullResult(time=now)
        for ca_name, replica in self.agent.replicas.items():
            try:
                self._pull_one(ca_name, replica, now, result)
            except (CDNError, DictionaryError, SignatureError) as exc:
                # One CA's bad objects (or forged signatures) must never
                # abort the pull cycle for every other healthy CA.
                result.errors.append(f"{ca_name}: {exc}")
        self.pull_history.append(result)
        return result

    def _pull_one(self, ca_name: str, replica, now: float, result: PullResult) -> None:
        download = self.cdn.download(head_path(ca_name), self.location, now)
        result.bytes_downloaded += download.bytes_on_wire
        result.latency_seconds += download.latency_seconds
        result.heads_checked += 1
        head = decode_head(download.content)

        self.agent.consistency.observe_root(head.signed_root)

        if replica.signed_root is None or replica.is_desynchronized(head.size):
            applied = self._catch_up(ca_name, replica, head, now, result)
            result.serials_applied += applied
            if replica.size == head.size and (
                replica.signed_root is None
                or head.signed_root.timestamp > replica.signed_root.timestamp
            ):
                # Bootstrap (empty dictionary) or a re-signed root over the
                # content we just caught up to.
                replica.install_root(head.signed_root)
        elif head.signed_root.root == replica.signed_root.root:
            # Same content; a newer signed root only appears when the CA's
            # hash chain ran out and it re-signed the same dictionary.
            if head.signed_root.timestamp > replica.signed_root.timestamp:
                replica.install_root(head.signed_root)

        replica.apply_freshness(head.freshness)
        result.freshness_applied += 1

    def _catch_up(self, ca_name, replica, head, now, result: PullResult) -> int:
        """Fetch the missing issuance batches and apply them in one store
        transaction (or fall back to sync).

        All fetchable, contiguous batches are collected first and handed to
        the replica at once (``RevocationAgent.apply_issuances``), so one
        pull cycle costs one merge and one suffix rehash regardless of how
        many batches were queued since the last pull.
        """
        # ``committed`` only ever advances over batches whose content is
        # durably in the replica (applied, already present, or covered by a
        # successful resync) — a batch that failed to apply is refetched on
        # the next pull rather than skipped forever.
        committed = self._applied_batches.get(ca_name, 0)
        batch = committed
        pending = []
        have = replica.size
        needs_resync = False
        while have < head.size:
            next_batch = batch + 1
            path = issuance_path(ca_name, next_batch)
            if not self.cdn.origin.exists(path):
                needs_resync = True
                break
            batch = next_batch
            download = self.cdn.download(path, self.location, now)
            result.bytes_downloaded += download.bytes_on_wire
            result.latency_seconds += download.latency_seconds
            issuance = decode_issuance(download.content)
            if issuance.first_number > have + 1:
                # A gap: earlier batches were purged or missed; full resync.
                needs_resync = True
                break
            if issuance.first_number <= have:
                if not pending:
                    committed = batch  # old batch, content already in the replica
                continue
            pending.append(issuance)
            have += len(issuance.serials)
        applied_serials = 0
        if pending:
            try:
                applied_serials += self.agent.apply_issuances(ca_name, pending)
                result.issuances_applied += len(pending)
                committed += len(pending)  # pending batches are consecutive
            except (DictionaryError, SignatureError) as exc:
                # Tampered batch content (update_many rolled the replica back
                # to its last verified state) or a forged root signature
                # (rejected before anything was staged): either way the sync
                # protocol can recover the honest suffix directly.
                result.errors.append(f"{ca_name}: {exc}")
                needs_resync = True
        if needs_resync:
            resynced = self._resync(ca_name, replica, result)
            if resynced is not None:
                applied_serials += resynced
                committed = batch  # everything fetched so far is now covered
        self._applied_batches[ca_name] = committed
        return applied_serials

    def _resync(self, ca_name: str, replica, result: PullResult) -> Optional[int]:
        """Full-state recovery via the CA's sync endpoint.

        Returns the number of serials applied, or ``None`` when no sync
        server is known (the caller must not mark fetched batches as
        consumed in that case).
        """
        server = self.sync_servers.get(ca_name)
        if server is None:
            result.errors.append(f"{ca_name}: desynchronized and no sync server known")
            return None
        response = server.serve(SyncRequest(ca_name=ca_name, have_count=replica.size))
        result.bytes_downloaded += response.encoded_size()
        if response.serials:
            replica.update(response.as_issuance())
        else:
            replica.install_root(response.signed_root)
        if response.freshness is not None:
            replica.apply_freshness(response.freshness)
        result.resyncs += 1
        return len(response.serials)

    # -- bookkeeping ------------------------------------------------------------------

    def total_bytes_downloaded(self) -> int:
        """Bytes fetched from the CDN across every recorded pull cycle."""
        return sum(pull.bytes_downloaded for pull in self.pull_history)

    def average_pull_latency(self) -> float:
        """Mean client-observed latency per pull cycle, in seconds."""
        if not self.pull_history:
            return 0.0
        return sum(pull.latency_seconds for pull in self.pull_history) / len(self.pull_history)


def attach_agent_to_cas(
    agent: RevocationAgent,
    cas: List[RITMCertificationAuthority],
    cdn: CDNNetwork,
    location: GeoLocation,
) -> RADisseminationClient:
    """Wire an RA to a set of RITM CAs: register replicas and sync servers."""
    client = RADisseminationClient(agent, cdn, location)
    for ca in cas:
        agent.register_ca(ca.name, ca.public_key)
        client.register_sync_server(ca.name, ca.sync_server)
    return client
