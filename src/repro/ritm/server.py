"""TLS servers and TLS terminators as network endpoints.

The plain :class:`RITMServer` is an ordinary TLS server: it ignores the RITM
ClientHello extension entirely (paper §III step 3 — servers need no changes).
The :class:`TLSTerminator` models the close-to-server deployment (§IV): a
data-center ingress box that terminates TLS on behalf of the servers, whose
handshake confirms RITM support inside the ServerHello, and which typically
has an RA co-located with it.
"""

from __future__ import annotations

from typing import List, Optional

from repro.net.node import Endpoint
from repro.net.packet import Direction, Packet
from repro.pki.certificate import CertificateChain
from repro.tls.connection import (
    ServerConnectionConfig,
    TLSServerConnection,
)
from repro.tls.records import TLSRecord, parse_records, serialize_records
from repro.tls.session import SessionCache, TicketIssuer


class RITMServer(Endpoint):
    """An unmodified TLS server endpoint."""

    def __init__(
        self,
        ip_address: str,
        chain: CertificateChain,
        acts_as_ritm_terminator: bool = False,
        session_cache: Optional[SessionCache] = None,
        ticket_issuer: Optional[TicketIssuer] = None,
    ) -> None:
        super().__init__(ip_address)
        self.chain = chain
        self._session_cache = session_cache if session_cache is not None else SessionCache()
        self._ticket_issuer = ticket_issuer if ticket_issuer is not None else TicketIssuer()
        self._acts_as_terminator = acts_as_ritm_terminator
        #: One connection state machine per flow (keyed by the client side).
        self._connections: dict = {}
        self.application_payloads: List[bytes] = []

    def _connection_for(self, packet: Packet) -> TLSServerConnection:
        key = (packet.flow.src_ip, packet.flow.src_port)
        if key not in self._connections:
            self._connections[key] = TLSServerConnection(
                ServerConnectionConfig(
                    chain=self.chain,
                    acts_as_ritm_terminator=self._acts_as_terminator,
                ),
                session_cache=self._session_cache,
                ticket_issuer=self._ticket_issuer,
            )
        return self._connections[key]

    def handle_packet(self, packet: Packet, now: float) -> List[Packet]:
        connection = self._connection_for(packet)
        records = parse_records(packet.payload)
        responses: List[TLSRecord] = []
        for record in records:
            if record.is_ritm_status():
                # A server never sees these in practice (they travel towards
                # the client); ignore them defensively.
                continue
            responses.extend(connection.process_record(record, int(now)))
        self.application_payloads.extend(connection.application_data_received)
        connection.application_data_received = []
        if responses:
            return [packet.reply(serialize_records(responses), created_at=now)]
        return []

    def send_application_data(self, client_flow, payload: bytes, now: float) -> Packet:
        """Build a server→client application-data packet on an established session."""
        key = (client_flow.src_ip, client_flow.src_port)
        if key not in self._connections:
            raise KeyError(f"no TLS connection for client {key}")
        record = self._connections[key].application_data(payload)
        return Packet(
            flow=client_flow.reversed(),
            payload=record.to_bytes(),
            direction=Direction.SERVER_TO_CLIENT,
            created_at=now,
        )

    def connection_count(self) -> int:
        return len(self._connections)


class TLSTerminator(RITMServer):
    """A data-center TLS terminator that confirms RITM support in ServerHello.

    In the close-to-server deployment the terminator is where the RA
    functionality is attached; confirming support inside the (integrity
    protected) handshake is what defeats downgrade attacks in that model.
    """

    def __init__(self, ip_address: str, chain: CertificateChain, **kwargs) -> None:
        super().__init__(ip_address, chain, acts_as_ritm_terminator=True, **kwargs)
