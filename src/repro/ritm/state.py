"""Per-connection state kept by a Revocation Agent (Eq. 4 of the paper).

For every RITM-supported TLS connection the RA remembers the five-tuple, the
time it last delivered a revocation status (``lastStatus``), the handshake
stage, and — once the ServerHello has been observed — the issuing CA and the
certificate's serial number.  Resumed sessions re-populate the CA/serial
fields from the session cache the RA keeps alongside the flow table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.net.packet import FiveTuple
from repro.pki.serial import SerialNumber
from repro.tls.connection import HandshakeStage


@dataclass
class ConnectionState:
    """The RA's record for one supported TLS connection (Eq. 4)."""

    flow: FiveTuple
    last_status: float = 0.0
    stage: HandshakeStage = HandshakeStage.CLIENT_HELLO
    ca_name: Optional[str] = None
    serial: Optional[SerialNumber] = None
    #: ``not_after`` of the observed server certificate; selects the expiry
    #: shard when the issuing CA runs sharded dictionaries (§VIII).
    certificate_expiry: Optional[int] = None
    #: TLS session identifier (for session-ID resumption bookkeeping).
    session_id: bytes = b""
    created_at: float = 0.0
    last_activity: float = 0.0
    #: Full certificate chain observed on the handshake (used when the RA is
    #: configured to prove every certificate in the chain, §VIII).
    chain: Optional[object] = None

    def needs_status(self, now: float, delta_seconds: float) -> bool:
        """Has ``delta`` elapsed since the last status was delivered? (§III step 6)."""
        return now - self.last_status >= delta_seconds

    def mark_status_sent(self, now: float) -> None:
        self.last_status = now

    def is_established(self) -> bool:
        return self.stage == HandshakeStage.ESTABLISHED

    def knows_certificate(self) -> bool:
        return self.ca_name is not None and self.serial is not None


class ConnectionTable:
    """The RA's flow table, keyed by the canonical five-tuple."""

    def __init__(self, idle_timeout_seconds: float = 3600.0) -> None:
        self._connections: Dict[FiveTuple, ConnectionState] = {}
        self.idle_timeout_seconds = idle_timeout_seconds
        #: Session-ID → (ca_name, serial) memory for abbreviated handshakes.
        self._session_memory: Dict[bytes, tuple] = {}

    def __len__(self) -> int:
        return len(self._connections)

    def create(self, flow: FiveTuple, now: float) -> ConnectionState:
        state = ConnectionState(
            flow=flow.canonical(),
            stage=HandshakeStage.CLIENT_HELLO,
            created_at=now,
            last_activity=now,
        )
        self._connections[flow.canonical()] = state
        return state

    def lookup(self, flow: FiveTuple) -> Optional[ConnectionState]:
        return self._connections.get(flow.canonical())

    def remove(self, flow: FiveTuple) -> None:
        self._connections.pop(flow.canonical(), None)

    def touch(self, flow: FiveTuple, now: float) -> None:
        state = self.lookup(flow)
        if state is not None:
            state.last_activity = now

    def expire_idle(self, now: float) -> int:
        """Drop connections idle longer than the timeout; returns how many."""
        stale = [
            key
            for key, state in self._connections.items()
            if now - state.last_activity > self.idle_timeout_seconds
        ]
        for key in stale:
            del self._connections[key]
        return len(stale)

    def states(self):
        return list(self._connections.values())

    # -- session resumption memory -------------------------------------------

    def remember_session(self, session_id: bytes, ca_name: str, serial: SerialNumber) -> None:
        if session_id:
            self._session_memory[session_id] = (ca_name, serial)

    def recall_session(self, session_id: bytes) -> Optional[tuple]:
        return self._session_memory.get(session_id)
