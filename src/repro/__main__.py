"""``python -m repro`` — the scenario command line (see docs/SCENARIOS.md)."""

import sys

from repro.scenarios.cli import main

if __name__ == "__main__":
    sys.exit(main())
