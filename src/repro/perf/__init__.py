"""Hot-path verification engine: caches and batch helpers for the read path.

The paper's pitch (§VII, Table 3 / Fig. 7) is that revocation checking is
cheap enough to sit on the TLS handshake path at CDN scale.  Three costs
dominate the *read* side of this reproduction:

* **Ed25519 signature checks** — the pure-Python implementation takes
  milliseconds per verification, and a naive client re-verifies the CA's
  signed root on every handshake even though the root changes at most once
  per Δ epoch;
* **Merkle path construction** — an RA recomputes the audit path for a
  serial on every lookup, although repeat lookups (session resumption,
  flash crowds) hit the same ``(root, serial)`` pair again and again;
* **per-signature dispatch overhead** — dissemination pulls and resyncs
  verify many signed roots one by one.

This package provides the shared machinery that removes those costs without
ever weakening verification:

* :class:`~repro.perf.cache.CacheStats` / :class:`~repro.perf.cache.LRUCache`
  — counters and a bounded LRU used by every cache in the engine (and by
  the CDN edge object cache);
* :class:`~repro.perf.root_cache.VerifiedRootCache` — memoizes *successful*
  Ed25519 verifications of signed roots, keyed by a digest of the exact
  ``(public key, payload, signature)`` bytes, so a tampered or rotated root
  can never alias a cached verdict;
* :class:`~repro.perf.proof_cache.ProofCache` — a bounded LRU of Merkle
  membership proofs keyed by ``(ca, shard, root hash, serial)`` with
  explicit invalidation per dictionary (refresh / resync / shard
  retirement).

Batch signature verification itself lives in :mod:`repro.crypto.signing`
(``verify_batch``); :class:`VerifiedRootCache` routes its cache misses
through it.  See ``docs/PERFORMANCE.md`` for the end-to-end architecture,
invalidation rules, and tuning knobs.
"""

from repro.perf.cache import CacheStats, LRUCache
from repro.perf.proof_cache import DEFAULT_PROOF_CACHE_SIZE, ProofCache
from repro.perf.root_cache import DEFAULT_ROOT_CACHE_SIZE, VerifiedRootCache

__all__ = [
    "CacheStats",
    "DEFAULT_PROOF_CACHE_SIZE",
    "DEFAULT_ROOT_CACHE_SIZE",
    "LRUCache",
    "ProofCache",
    "VerifiedRootCache",
]
