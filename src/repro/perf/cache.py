"""Shared cache primitives: hit/miss/eviction counters and a bounded LRU.

Every cache in the hot-path engine (verified roots, Merkle proofs, chain
validations, CDN edge objects) reports the same :class:`CacheStats` shape,
so benchmarks, ``PullResult`` metrics, and :class:`ScenarioReport` sections
can aggregate them uniformly.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Hashable, Optional


@dataclass
class CacheStats:
    """Operational counters for one cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        """Total counted lookups (hits + misses)."""
        return self.hits + self.misses

    def hit_rate(self) -> float:
        """Hits as a fraction of counted lookups (0.0 when never queried)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready representation, including the derived hit rate."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": round(self.hit_rate(), 4),
        }


class LRUCache:
    """A bounded least-recently-used map with :class:`CacheStats` counters.

    ``maxsize`` bounds the number of entries; ``0`` disables the cache
    entirely (every :meth:`get` misses, every :meth:`put` is a no-op), which
    is the supported way to switch a hot-path cache off for ablations, and
    ``None`` means unbounded — for callers whose entries already expire some
    other way (e.g. by TTL) and who accept unbounded growth; the CDN edge
    bounds its object cache at ``DEFAULT_MAX_OBJECTS`` instead.
    """

    def __init__(self, maxsize: Optional[int] = 1024) -> None:
        if maxsize is not None and maxsize < 0:
            raise ValueError("maxsize must be None (unbounded) or >= 0")
        self.maxsize = maxsize
        self.stats = CacheStats()
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def get(self, key: Hashable, is_valid=None) -> Optional[Any]:
        """Return the cached value (bumping recency) or ``None``; counted.

        ``is_valid`` (entry → bool) makes the lookup freshness-aware: a
        present-but-invalid entry — a TTL-expired CDN object, a chain
        validation outside its validity window — counts as a *miss*, and
        the dead entry is dropped (counted as an invalidation) so it cannot
        shadow the slot or inflate the hit rate.
        """
        try:
            value = self._entries[key]
        except KeyError:
            self.stats.misses += 1
            return None
        if is_valid is not None and not is_valid(value):
            del self._entries[key]
            self.stats.invalidations += 1
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return value

    def peek(self, key: Hashable) -> Optional[Any]:
        """Like :meth:`get` but without touching recency or the counters."""
        return self._entries.get(key)

    def put(self, key: Hashable, value: Any) -> None:
        """Insert/replace an entry, evicting the least recently used if full."""
        if self.maxsize == 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        if self.maxsize is not None and len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def discard(self, key: Hashable) -> bool:
        """Drop one entry; returns whether it existed (counted as invalidation)."""
        if self._entries.pop(key, None) is None:
            return False
        self.stats.invalidations += 1
        return True

    def clear(self) -> int:
        """Drop every entry; returns how many were invalidated."""
        dropped = len(self._entries)
        self._entries.clear()
        self.stats.invalidations += dropped
        return dropped

    def keys(self):
        """The cached keys, least recently used first."""
        return list(self._entries.keys())
