"""Bounded LRU cache of Merkle membership proofs for the TLS read path.

An RA (and, in the close-to-server deployment, the CDN edge terminator it is
co-located with) answers the same lookups over and over: session resumption
re-asks about the serial it just proved, and a flash crowd asks about one
hot certificate from thousands of connections within a single Δ.  The audit
path for a serial depends only on the dictionary *content*, which is
committed by the root hash — so proofs are cached under the key

    ``(ca, shard, root hash, serial)``

and a cached proof is byte-identical to a freshly built one for as long as
the dictionary still serves that root.  A root change (revocation batch,
resync) changes the key, so stale entries are unreachable by construction;
explicit invalidation (:meth:`ProofCache.invalidate_dictionary`) reclaims
their space on refresh, resync, and shard retirement.  A re-signed root over
*unchanged* content (hash-chain exhaustion) keeps the same root hash, so the
cache deliberately stays warm across that rotation.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Hashable, Optional, Set, Tuple

from repro.perf.cache import CacheStats

#: Default capacity: roughly one flash crowd's worth of distinct serials.
DEFAULT_PROOF_CACHE_SIZE = 4096

_Key = Tuple[str, str, bytes, int]


class ProofCache:
    """LRU of membership proofs keyed by ``(ca, shard, root hash, serial)``."""

    def __init__(self, maxsize: int = DEFAULT_PROOF_CACHE_SIZE) -> None:
        if maxsize < 0:
            raise ValueError("maxsize must be >= 0 (0 disables the cache)")
        self.maxsize = maxsize
        self.stats = CacheStats()
        self._entries: "OrderedDict[_Key, Any]" = OrderedDict()
        #: dictionary name (shard name, or CA name when unsharded) → keys,
        #: so refresh/resync/retirement can evict exactly one dictionary.
        self._by_dictionary: Dict[str, Set[_Key]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def _dictionary_name(ca: str, shard: str) -> str:
        """The replica the entry came from: the shard name, or the CA's."""
        return shard or ca

    def get(
        self, ca: str, shard: str, root: bytes, serial_value: int
    ) -> Optional[Any]:
        """The cached proof for this exact dictionary version, or ``None``."""
        key: _Key = (ca, shard, root, serial_value)
        try:
            proof = self._entries[key]
        except KeyError:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return proof

    def put(
        self, ca: str, shard: str, root: bytes, serial_value: int, proof: Any
    ) -> None:
        """Cache one freshly built proof, evicting the LRU entry when full."""
        if self.maxsize == 0:
            return
        key: _Key = (ca, shard, root, serial_value)
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = proof
        self._by_dictionary.setdefault(self._dictionary_name(ca, shard), set()).add(key)
        if len(self._entries) > self.maxsize:
            evicted_key, _ = self._entries.popitem(last=False)
            self._unindex(evicted_key)
            self.stats.evictions += 1

    def invalidate_dictionary(self, name: str) -> int:
        """Drop every proof built from one dictionary (CA or shard name).

        The read path would never serve those entries anyway (their root no
        longer matches), so this is purely about keeping the bounded cache
        full of *reachable* proofs after a refresh, resync, or retirement.
        """
        keys = self._by_dictionary.pop(name, None)
        if not keys:
            return 0
        for key in keys:
            self._entries.pop(key, None)
        self.stats.invalidations += len(keys)
        return len(keys)

    def clear(self) -> int:
        """Drop every proof; returns how many entries were invalidated."""
        dropped = len(self._entries)
        self._entries.clear()
        self._by_dictionary.clear()
        self.stats.invalidations += dropped
        return dropped

    def _unindex(self, key: _Key) -> None:
        """Remove one evicted key from the per-dictionary index."""
        name = self._dictionary_name(key[0], key[1])
        members = self._by_dictionary.get(name)
        if members is not None:
            members.discard(key)
            if not members:
                del self._by_dictionary[name]
