"""Memoized Ed25519 verification of CA-signed dictionary roots.

A signed root changes at most once per Δ epoch (a revocation or a hash-chain
exhaustion), but a naive verifier re-runs the ~millisecond pure-Python
Ed25519 check on every TLS handshake and on every status refresh of an
established connection.  :class:`VerifiedRootCache` memoizes *successful*
verifications so each distinct root is checked exactly once per epoch.

Correctness does not rest on invalidation: the cache key is a SHA-256 digest
of the exact ``public key ‖ payload ‖ signature`` bytes, so a tampered root,
a different signer, or a rotated epoch produces a different key and always
takes the full verification path.  Failed verifications are never cached —
forged roots cannot displace useful entries, and a repeat forgery costs the
attacker a full verification each time, not the verifier.  Explicit
invalidation (:meth:`invalidate_ca`) exists purely to keep the bounded cache
from carrying dead epochs after a refresh, resync, or shard retirement.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import TYPE_CHECKING, Dict, List, Sequence, Set

from repro.crypto.signing import (
    DEFAULT_BATCH_WIDTH,
    PublicKey,
    acceptable_verifiers,
    verify_batch,
)
from repro.errors import SignatureError
from repro.perf.cache import CacheStats

if TYPE_CHECKING:  # pragma: no cover - import only for type checkers
    from repro.dictionary.signed_root import SignedRoot

#: Default capacity: a few epochs of roots for every CA a busy RA replicates.
DEFAULT_ROOT_CACHE_SIZE = 256


class VerifiedRootCache:
    """Bounded memo of successfully verified signed roots, per verifier."""

    def __init__(
        self,
        maxsize: int = DEFAULT_ROOT_CACHE_SIZE,
        batch_width: int = DEFAULT_BATCH_WIDTH,
    ) -> None:
        if maxsize < 0:
            raise ValueError("maxsize must be >= 0 (0 disables the cache)")
        if batch_width < 1:
            raise ValueError("batch_width must be at least 1")
        self.maxsize = maxsize
        self.batch_width = batch_width
        self.stats = CacheStats()
        #: cache key → CA name (the value only serves index cleanup).
        self._entries: "OrderedDict[bytes, str]" = OrderedDict()
        #: CA name → cache keys, for explicit per-CA invalidation.
        self._by_ca: Dict[str, Set[bytes]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def _key(signed_root: "SignedRoot", public_key: PublicKey) -> bytes:
        """Digest of the exact bytes whose verification is being memoized."""
        digest = hashlib.sha256()
        digest.update(public_key.key_bytes)
        digest.update(signed_root.payload())
        digest.update(signed_root.signature)
        return digest.digest()

    # -- verification --------------------------------------------------------

    def verify(self, signed_root: "SignedRoot", public_key) -> bool:
        """Like :meth:`SignedRoot.verify`, but each success is checked once."""
        return self.verify_many([signed_root], public_key)[0]

    def verify_or_raise(self, signed_root: "SignedRoot", public_key) -> None:
        """Raise :class:`SignatureError` unless the root verifies (memoized)."""
        if not self.verify(signed_root, public_key):
            raise SignatureError(
                f"signed root from {signed_root.ca_name!r} failed verification"
            )

    def verify_many(
        self, signed_roots: Sequence["SignedRoot"], public_key
    ) -> List[bool]:
        """Per-root validity; cache misses are batch-verified and memoized.

        This is the path dissemination pulls and resyncs use: all the roots
        queued since the last pull share one batched verification
        (:func:`repro.crypto.signing.verify_batch`) instead of one full
        scalar-multiplication pair each.

        ``public_key`` may be a bare :class:`PublicKey` or a
        :class:`~repro.crypto.signing.CAKeyring`.  With a keyring, a verdict
        is memoized under the *specific* key that verified it and a cached
        hit counts only while that key is still acceptable — so a root
        signed by a retired key stops verifying the moment its overlap
        window closes, cached or not.
        """
        verifier_keys = acceptable_verifiers(public_key)
        if not verifier_keys:
            self.stats.misses += len(signed_roots)
            return [False] * len(signed_roots)
        primary = verifier_keys[0]
        results: List[bool] = [False] * len(signed_roots)
        missed: List[int] = []
        for index, signed_root in enumerate(signed_roots):
            hit = False
            for verifier in verifier_keys:
                key = self._key(signed_root, verifier)
                if key in self._entries:
                    self._entries.move_to_end(key)
                    hit = True
                    break
            if hit:
                self.stats.hits += 1
                results[index] = True
            else:
                self.stats.misses += 1
                missed.append(index)
        if missed:
            verdicts = verify_batch(
                [
                    (primary, signed_roots[i].payload(), signed_roots[i].signature)
                    for i in missed
                ],
                batch_width=self.batch_width,
            )
            for index, valid in zip(missed, verdicts):
                verified_under = primary if valid else None
                if not valid:
                    # Overlap fallback: an older-but-still-acceptable key may
                    # have signed this root (mid-rotation pulls, restores).
                    for verifier in verifier_keys[1:]:
                        if verifier.verify(
                            signed_roots[index].payload(), signed_roots[index].signature
                        ):
                            verified_under = verifier
                            break
                results[index] = verified_under is not None
                if verified_under is not None:
                    self._remember(signed_roots[index], verified_under)
        return results

    # -- maintenance ---------------------------------------------------------

    def invalidate_ca(self, ca_name: str) -> int:
        """Drop every cached verdict for one CA (or shard) name.

        Called on epoch refresh, resync, and shard retirement so the bounded
        cache does not carry dead epochs; never required for correctness.
        """
        keys = self._by_ca.pop(ca_name, None)
        if not keys:
            return 0
        for key in keys:
            self._entries.pop(key, None)
        self.stats.invalidations += len(keys)
        return len(keys)

    def clear(self) -> int:
        """Drop every cached verdict; returns how many were invalidated."""
        dropped = len(self._entries)
        self._entries.clear()
        self._by_ca.clear()
        self.stats.invalidations += dropped
        return dropped

    def _remember(self, signed_root: "SignedRoot", public_key: PublicKey) -> None:
        """Memoize one verified root, evicting the LRU entry when full."""
        if self.maxsize == 0:
            return
        key = self._key(signed_root, public_key)
        self._entries[key] = signed_root.ca_name
        self._by_ca.setdefault(signed_root.ca_name, set()).add(key)
        if len(self._entries) > self.maxsize:
            evicted_key, evicted_ca = self._entries.popitem(last=False)
            members = self._by_ca.get(evicted_ca)
            if members is not None:
                members.discard(evicted_key)
                if not members:
                    del self._by_ca[evicted_ca]
            self.stats.evictions += 1
