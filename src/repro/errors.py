"""Exception hierarchy shared by every subsystem of the RITM reproduction.

All library-raised exceptions derive from :class:`ReproError` so that callers
can distinguish failures of the reproduction code from ordinary Python errors.
The hierarchy mirrors the subsystem layout: cryptographic failures,
dictionary/proof failures, TLS protocol failures, network-simulation failures,
and RITM protocol-policy failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class CryptoError(ReproError):
    """A cryptographic operation failed (bad key, bad signature encoding...)."""


class SignatureError(CryptoError):
    """A digital signature failed to verify."""


class HashChainError(CryptoError):
    """A hash-chain (freshness statement) value could not be linked to its anchor."""


class ProofError(ReproError):
    """A Merkle presence/absence proof is malformed or does not verify."""


class StorageError(ReproError):
    """A durable-store persistence structure (WAL, snapshot, or checkpoint)
    is missing, corrupt, truncated mid-record, or of an incompatible format
    version."""


class DictionaryError(ReproError):
    """An authenticated-dictionary operation violated its invariants."""


class DesynchronizedError(DictionaryError):
    """A replica detected that it is behind (or ahead of) the CA's dictionary."""


class ReplayError(DictionaryError):
    """A control-plane message re-presented state older than the replay window.

    Raised by the dissemination layer when a signed head, shard index, or
    freshness statement would roll a replica back past its bounded replay
    window — the signature may be valid, but the content is a recording."""


class StaleStatusError(ReproError):
    """A revocation status is older than the client's acceptance window (2*delta)."""


class RevokedCertificateError(ReproError):
    """Certificate validation failed because the certificate is revoked."""


class CertificateError(ReproError):
    """A certificate or certificate chain failed standard validation."""


class TLSError(ReproError):
    """A TLS message could not be parsed or violates the handshake state machine."""


class NetworkError(ReproError):
    """The network simulator was asked to do something impossible."""


class CDNError(ReproError):
    """A CDN request could not be served (unknown object, unknown edge...)."""


class PolicyError(ReproError):
    """An RITM policy violation (e.g. missing status on a supported connection)."""


class MisbehaviorDetected(ReproError):
    """Consistency checking produced cryptographic evidence of CA misbehavior.

    The exception carries the two conflicting signed roots so that the caller
    can forward the evidence (e.g. to a software vendor, as in the paper).
    """

    def __init__(self, message: str, evidence: object = None) -> None:
        super().__init__(message)
        self.evidence = evidence


class ConfigurationError(ReproError):
    """A component was configured with inconsistent or out-of-range parameters."""
